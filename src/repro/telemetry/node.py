"""Per-node telemetry state, published as a well-known remoting object.

Every :class:`repro.cluster.node.Node` owns a :class:`NodeTelemetry` and
publishes it at ``{base_uri}/telemetry``, so collection is just another
remote call: the home node's runtime walks the cluster directory, pulls
each node's events and metrics export over whatever channel the cluster
already uses (in-process nodes are read directly), and merges them into
one Chrome trace / cluster-wide metrics aggregate.  ``scrape()`` serves
the Prometheus text format for external scrapers.
"""

from __future__ import annotations

from typing import Any

from repro.remoting import MarshalByRefObject
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.metrics import MetricsRegistry, render_prometheus
from repro.telemetry.tracer import Tracer


class NodeTelemetry(MarshalByRefObject):
    """One node's tracer + metrics, remotely collectable.

    Always constructed (the publication must exist at a well-known path
    whether or not tracing is on); *enabled* gates recording, and the
    remote surface returns plain data — no live objects cross the wire.
    """

    def __init__(
        self, label: str, config: TelemetryConfig | None = None
    ) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.label = label
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            self.config.capacity, metrics=self.metrics, name=label
        )

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # -- remote surface ----------------------------------------------------

    def node_label(self) -> str:
        return self.label

    def trace_events(self) -> list[dict[str, Any]]:
        """This node's recorded events as plain dicts (wire format)."""
        return self.tracer.events_data()

    def dropped_events(self) -> int:
        return self.tracer.dropped

    def metrics_export(self) -> dict[str, dict[str, Any]]:
        """Structured metrics (see :meth:`MetricsRegistry.export`)."""
        return self.metrics.export()

    def scrape(self) -> str:
        """Prometheus text exposition of this node's metrics."""
        return render_prometheus(self.metrics.export())
