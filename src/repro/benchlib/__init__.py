"""Benchmark support: ping-pong drivers, farm simulation, table formatting.

The figure benchmarks combine two honest ingredients:

1. **real protocol bytes** — each stack's messages are actually encoded by
   its real formatter/envelope code, so the binary-vs-SOAP-vs-raw-buffer
   overhead ratios are measured, not assumed;
2. **modeled network cost** — the paper's own latency/bandwidth constants
   (:mod:`repro.perfmodel`), because the paper's 2005 cluster cannot be
   re-run.

Live drivers (:mod:`repro.benchlib.pingpong`) also run the full stacks
over real localhost sockets for functional validation and relative
ordering on today's hardware.
"""

from repro.benchlib.pingpong import (
    live_pingpong_mpi,
    live_pingpong_nio,
    live_pingpong_remoting,
    live_pingpong_rmi,
    message_bytes_mpi,
    message_bytes_nio,
    message_bytes_remoting,
    message_bytes_rmi,
    modeled_bandwidth_from_bytes,
    modeled_time_from_bytes,
)
from repro.benchlib.farmsim import FarmResult, simulate_farm, fig9_curve
from repro.benchlib.tables import format_table, log_sizes

__all__ = [
    "FarmResult",
    "fig9_curve",
    "format_table",
    "live_pingpong_mpi",
    "live_pingpong_nio",
    "live_pingpong_remoting",
    "live_pingpong_rmi",
    "log_sizes",
    "message_bytes_mpi",
    "message_bytes_nio",
    "message_bytes_remoting",
    "message_bytes_rmi",
    "modeled_bandwidth_from_bytes",
    "modeled_time_from_bytes",
    "simulate_farm",
]
