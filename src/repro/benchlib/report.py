"""One-shot evaluation report: every §4 figure/table on stdout.

Usage::

    python -m repro.benchlib.report            # all experiments
    python -m repro.benchlib.report fig8a fig9 # a subset

This is the human-friendly companion to ``pytest benchmarks/`` — the same
drivers and models, no assertions, just the paper-style tables.
"""

from __future__ import annotations

import sys

from repro.benchlib.pingpong import (
    message_bytes_mpi,
    message_bytes_remoting,
    message_bytes_rmi,
    modeled_bandwidth_from_bytes,
)
from repro.benchlib.farmsim import fig9_curve, simulate_farm
from repro.benchlib.tables import format_table, human_bytes, log_sizes
from repro.perfmodel import (
    JAVA_NIO,
    JAVA_RMI,
    MONO_105_TCP,
    MONO_117_HTTP,
    MONO_117_TCP,
    MPI_MPICH,
    MS_NET,
)
from repro.perfmodel.platforms import SUN_JVM
from repro.serialization import BinaryFormatter, SoapFormatter

MB = 1024.0 * 1024.0
SIZES = log_sizes(1, 1024 * 1024, per_decade=2)


def _bandwidth_row(model, measure, size, formatter=None):  # type: ignore[no-untyped-def]
    n_ints = max(1, size // 4)
    payload = 4 * n_ints
    if formatter is None:
        request, response = measure(n_ints)
    else:
        request, response = measure(n_ints, formatter)
    return modeled_bandwidth_from_bytes(model, payload, request, response) / MB


def report_fig8a() -> str:
    rows = []
    for size in SIZES:
        rows.append(
            [
                human_bytes(4 * max(1, size // 4)),
                round(_bandwidth_row(MPI_MPICH, message_bytes_mpi, size), 3),
                round(_bandwidth_row(JAVA_RMI, message_bytes_rmi, size), 3),
                round(
                    _bandwidth_row(MONO_117_TCP, message_bytes_remoting, size),
                    3,
                ),
            ]
        )
    return format_table(
        ["message", "MPI MB/s", "Java RMI MB/s", "Mono MB/s"],
        rows,
        title="Fig. 8a — inter-node bandwidth: Mono versus other",
    )


def report_fig8b() -> str:
    rows = []
    for size in SIZES:
        rows.append(
            [
                human_bytes(4 * max(1, size // 4)),
                round(
                    _bandwidth_row(
                        MONO_117_TCP, message_bytes_remoting, size,
                        BinaryFormatter(),
                    ),
                    4,
                ),
                round(
                    _bandwidth_row(
                        MONO_105_TCP, message_bytes_remoting, size,
                        BinaryFormatter(),
                    ),
                    4,
                ),
                round(
                    _bandwidth_row(
                        MONO_117_HTTP, message_bytes_remoting, size,
                        SoapFormatter(),
                    ),
                    4,
                ),
            ]
        )
    return format_table(
        ["message", "1.1.7 Tcp", "1.0.5 Tcp", "1.1.7 Http"],
        rows,
        title="Fig. 8b — bandwidth across Mono implementations (MB/s)",
    )


def report_latency() -> str:
    rows = [
        [model.name, round(model.one_way_latency_s * 1e6, 1)]
        for model in (MPI_MPICH, JAVA_RMI, JAVA_NIO, MONO_117_TCP)
    ]
    return format_table(
        ["platform", "one-way latency (us)"],
        rows,
        title="TAB-LAT — inter-node latency (paper: 100 / 273 / ~ / 520 us)",
    )


def report_fig9() -> str:
    processors = [1, 2, 3, 4, 5, 6]
    parc_curve = dict(fig9_curve(MONO_117_TCP, processors))
    java_curve = dict(fig9_curve(JAVA_RMI, processors))
    rows = [
        [
            p,
            round(parc_curve[p], 1),
            round(java_curve[p], 1),
            round(parc_curve[p] / java_curve[p], 2),
        ]
        for p in processors
    ]
    return format_table(
        ["processors", "ParC# (s)", "Java RMI (s)", "ratio"],
        rows,
        title="Fig. 9 — parallel ray tracer execution time (500x500)",
    )


def report_sequential() -> str:
    rows = [
        [model.name, model.compute_scale_float, model.compute_scale_int]
        for model in (SUN_JVM, MS_NET, MONO_117_TCP)
    ]
    return format_table(
        ["virtual machine", "float scale (ray tracer)", "int scale (sieve)"],
        rows,
        title="TAB-SEQ / TAB-SIEVE — sequential scale factors vs the JVM",
    )


def report_pool() -> str:
    chunks = [1.7] * 50
    model = MONO_117_TCP.with_overrides(thread_pool_limit=None)
    rows = []
    for cap in (1, 2, 4, 6, None):
        result = simulate_farm(6, chunks, model, 144.0, 20000.0, pool_limit=cap)
        rows.append(
            [
                "uncapped" if cap is None else cap,
                round(result.makespan_s, 2),
                round(result.efficiency, 3),
            ]
        )
    return format_table(
        ["pool cap", "makespan (s)", "efficiency"],
        rows,
        title="ABL-POOL — thread-pool throttling (Fig. 9 farm, 6 workers)",
    )


def report_aio() -> str:
    """Live tcp-vs-aio throughput under concurrency (this machine).

    Unlike the modeled tables above, this one runs the real stack over
    localhost: aggregate remoting calls/second with 1, 8, and 64
    concurrent callers per transport.  At 1 caller tcp wins — an aio
    call crosses threads four times (caller → loop → dispatch worker →
    loop → caller) where tcp is straight-line syscalls.  As concurrency
    grows those hops are shared (wake-ups are coalesced) and the
    pipelined single socket pulls ahead of thread-per-socket.
    """
    from repro.benchlib.pingpong import live_concurrent_pingpong

    rows = []
    for callers in (1, 8, 64):
        calls = 400 // callers + 50
        tcp_rate = live_concurrent_pingpong(16, callers, calls, "tcp")
        aio_rate = live_concurrent_pingpong(16, callers, calls, "aio")
        rows.append(
            [
                callers,
                round(tcp_rate),
                round(aio_rate),
                round(aio_rate / tcp_rate, 2),
            ]
        )
    return format_table(
        ["callers", "tcp calls/s", "aio calls/s", "aio/tcp"],
        rows,
        title="AIO — live remoting throughput, tcp vs aio (localhost)",
    )


REPORTS = {
    "fig8a": report_fig8a,
    "fig8b": report_fig8b,
    "latency": report_latency,
    "fig9": report_fig9,
    "sequential": report_sequential,
    "pool": report_pool,
    "aio": report_aio,
}


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if any(arg in ("-h", "--help") for arg in args):
        print(f"usage: python -m repro.benchlib.report [{' '.join(REPORTS)}]")
        return 2
    selected = args or list(REPORTS)
    unknown = [name for name in selected if name not in REPORTS]
    if unknown:
        print(f"unknown reports: {unknown}; known: {list(REPORTS)}", file=sys.stderr)
        return 2
    for index, name in enumerate(selected):
        if index:
            print()
        print(REPORTS[name]())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
