"""Farm simulator: regenerates Fig. 9's execution-time curves.

A deterministic event simulation of the paper's line-farming ray tracer:
a master deals chunks of image lines to ``p`` workers; each transfer costs
the platform model's latency + bytes/bandwidth (the master's NIC is a
serial resource); each chunk costs its compute time scaled by the
platform's sequential factor; at most ``pool_limit`` chunks may be in
flight (the Mono thread-pool throttling §4 blames: "limiting the number of
running threads in parallel applications reduces the overlap among
computation and communication and also produces starvation in some
application threads").

Both Fig. 9 curves come from one simulator with different platform
presets — exactly how the paper's two implementations differ.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.perfmodel.network import transfer_time
from repro.perfmodel.platforms import PlatformModel

#: Seconds between pool-thread injections for a capped thread pool
#: (mirrors the .Net/Mono thread-pool growth heuristic of the era).
THREAD_INJECTION_S = 0.5


@dataclass(frozen=True)
class FarmResult:
    """Outcome of one simulated farm run."""

    makespan_s: float
    chunks: int
    workers: int
    per_worker_busy_s: tuple[float, ...]

    @property
    def efficiency(self) -> float:
        """Busy time / (makespan × workers): 1.0 = perfect scaling."""
        if self.makespan_s <= 0:
            return 1.0
        return sum(self.per_worker_busy_s) / (self.makespan_s * self.workers)


def simulate_farm(
    workers: int,
    chunk_compute_s: list[float],
    model: PlatformModel,
    chunk_out_bytes: float,
    chunk_back_bytes: float,
    pool_limit: int | None = None,
) -> FarmResult:
    """Simulate a self-scheduling farm; returns makespan and busy times.

    Event structure per chunk: the master serializes sends on its NIC
    (``nic_free``); the chunk starts computing on its worker when both the
    transfer arrives and the worker is free; the result transfer completes
    the chunk.  ``pool_limit`` caps chunks dispatched-but-not-completed.
    """
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if not chunk_compute_s:
        return FarmResult(0.0, 0, workers, tuple([0.0] * workers))

    send_s = transfer_time(model, chunk_out_bytes)
    back_s = transfer_time(model, chunk_back_bytes)

    worker_free = [0.0] * workers
    busy = [0.0] * workers
    nic_free = 0.0
    # Completion heap of in-flight chunks: (finish time, worker index).
    in_flight: list[tuple[float, int]] = []
    makespan = 0.0

    def window_at(now: float) -> int:
        """Dispatch window: pool threads available at time *now*.

        A capped pool starts with ``pool_limit`` threads and injects one
        more every ``thread_injection_s`` — the slow ramp-up behind the
        starvation §4 describes.  An uncapped pool admits every worker.
        """
        if pool_limit is None:
            return workers
        grown = pool_limit + int(now / THREAD_INJECTION_S)
        return max(1, min(workers, grown))

    for compute_s in chunk_compute_s:
        # Respect the dispatch window (thread-pool throttling).
        while len(in_flight) >= window_at(nic_free):
            finish, _worker = heapq.heappop(in_flight)
            nic_free = max(nic_free, finish)
        # Self-scheduling: next chunk goes to the earliest-free worker.
        target = min(range(workers), key=worker_free.__getitem__)
        send_start = max(nic_free, worker_free[target])
        nic_free = send_start + send_s
        compute_start = max(send_start + send_s, worker_free[target])
        scaled = compute_s * model.compute_scale_float
        compute_end = compute_start + scaled
        finish = compute_end + back_s
        worker_free[target] = finish
        busy[target] += scaled
        heapq.heappush(in_flight, (finish, target))
        makespan = max(makespan, finish)

    return FarmResult(
        makespan_s=makespan,
        chunks=len(chunk_compute_s),
        workers=workers,
        per_worker_busy_s=tuple(busy),
    )


def fig9_curve(
    model: PlatformModel,
    processors: list[int],
    width: int = 500,
    height: int = 500,
    per_line_s: float = 0.17,
    lines_per_chunk: int = 10,
    pool_limit: int | None = None,
) -> list[tuple[int, float]]:
    """Execution time vs processor count for the Fig. 9 ray tracer.

    ``per_line_s`` is the JVM-baseline sequential cost of one 500-pixel
    line (the paper's Java curve starts near 85 s at one processor:
    85/500 = 0.17 s/line); platform scaling comes from *model*.
    ``pool_limit`` defaults to the model's ``thread_pool_limit``.
    """
    if pool_limit is None:
        pool_limit = model.thread_pool_limit
    chunk_bytes = 4.0 * width * lines_per_chunk  # packed RGB ints back
    request_bytes = 64.0 + 8.0 * lines_per_chunk  # line indices out
    chunks = []
    full, rest = divmod(height, lines_per_chunk)
    chunks.extend([per_line_s * lines_per_chunk] * full)
    if rest:
        chunks.append(per_line_s * rest)
    curve = []
    for p in processors:
        if p == 1:
            # Sequential execution: no farm, no communication.
            curve.append((p, per_line_s * height * model.compute_scale_float))
            continue
        result = simulate_farm(
            workers=p,
            chunk_compute_s=chunks,
            model=model,
            chunk_out_bytes=request_bytes,
            chunk_back_bytes=chunk_bytes,
            pool_limit=pool_limit,
        )
        curve.append((p, result.makespan_s))
    return curve
