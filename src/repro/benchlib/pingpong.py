"""Ping-pong drivers: the paper's low-level test (§4).

"Low-level performance was evaluated by a ping-pong test, where messages
with several sizes are exchanged between two nodes ... an array of
integers is sent and received as the method parameter and return type."

Two kinds of driver:

* ``message_bytes_*`` — encode one request/response pair with the stack's
  *real* protocol code and report the wire bytes; feed these to
  :func:`modeled_time_from_bytes` with a platform model to regenerate the
  paper's curves;
* ``live_pingpong_*`` — run the full stack over real localhost transport
  and measure wall-clock round trips (functional validation; absolute
  numbers are this machine's, not the paper's).
"""

from __future__ import annotations

import time
from array import array

from repro.channels import HttpChannel, TcpChannel
from repro.channels import create as channels_create
from repro.mpi import run_mpi
from repro.nio import ByteBuffer, ServerSocketChannel, SocketChannel
from repro.perfmodel.platforms import PlatformModel
from repro.remoting import MarshalByRefObject, RemotingHost, WellKnownObjectMode
from repro.remoting.messages import CallMessage, ReturnMessage
from repro.rmi import Naming, Remote, UnicastRemoteObject, remote_method
from repro.rmi.registry import LocateRegistry
from repro.rmi.runtime import RmiCall, RmiReturn
from repro.serialization import BinaryFormatter, Formatter


def int_payload(n_ints: int) -> array:
    """The benchmark payload: an int array (4 bytes per element)."""
    return array("i", range(n_ints))


# -- protocol byte measurement ------------------------------------------------

def message_bytes_remoting(
    n_ints: int, formatter: Formatter | None = None
) -> tuple[int, int]:
    """(request, response) wire bytes of one remoting echo call."""
    fmt = formatter if formatter is not None else BinaryFormatter()
    payload = int_payload(n_ints)
    request = fmt.dumps(
        CallMessage(uri="pingpong", method="echo", args=(payload,))
    )
    response = fmt.dumps(ReturnMessage(value=payload))
    return len(request), len(response)


def message_bytes_rmi(n_ints: int) -> tuple[int, int]:
    """(request, response) wire bytes of one RMI-analog echo call."""
    fmt = BinaryFormatter()
    payload = int_payload(n_ints)
    request = fmt.dumps(
        RmiCall(
            object_id="obj-1",
            operation="echo(1)",
            args=(payload,),
            annotations=[type(payload).__qualname__],
        )
    )
    response = fmt.dumps(RmiReturn(value=payload))
    return len(request), len(response)


def message_bytes_mpi(n_ints: int) -> tuple[int, int]:
    """(request, response) wire bytes of one MPI echo: the raw buffer."""
    raw = len(int_payload(n_ints).tobytes())
    return raw, raw


def message_bytes_nio(n_ints: int) -> tuple[int, int]:
    """(request, response) bytes of one nio echo: buffer + hand framing."""
    raw = len(int_payload(n_ints).tobytes()) + 4  # 4-byte length prefix
    return raw, raw


# -- model pricing -------------------------------------------------------------

def modeled_time_from_bytes(
    model: PlatformModel, request_bytes: int, response_bytes: int
) -> float:
    """Round-trip seconds pricing *measured* wire bytes with *model*.

    The model's ``wire_expansion`` is NOT applied here — the measured
    bytes already contain the real protocol expansion.
    """
    per_byte = 1.0 / model.wire_bandwidth_Bps
    return (
        2.0 * model.one_way_latency_s
        + (request_bytes + response_bytes) * per_byte
    )


def modeled_bandwidth_from_bytes(
    model: PlatformModel,
    payload_bytes: int,
    request_bytes: int,
    response_bytes: int,
) -> float:
    """Application bandwidth (payload bytes/s each way), as Fig. 8 plots."""
    round_trip = modeled_time_from_bytes(model, request_bytes, response_bytes)
    return 2.0 * payload_bytes / round_trip


# -- live drivers ---------------------------------------------------------------

class _EchoServer(MarshalByRefObject):
    """Remoting echo service (int array in, int array out)."""

    def echo(self, values: array) -> array:
        return values


def live_pingpong_remoting(
    n_ints: int, rounds: int = 10, channel_kind: str = "tcp"
) -> float:
    """Average round-trip seconds over a real transport (remoting stack).

    ``channel_kind`` is any base scheme the factory knows — ``"tcp"``,
    ``"http"``, ``"shm"`` (shared-memory rings, no wire at all), ...
    """
    from repro.channels.services import ChannelServices

    if channel_kind == "tcp":
        channel_cls = TcpChannel
    elif channel_kind == "http":
        channel_cls = HttpChannel
    else:
        def channel_cls():  # type: ignore[misc]
            return channels_create(channel_kind)
    server_channel = channel_cls()
    # Socket schemes bind an ephemeral port; non-socket schemes (shm,
    # loopback) mint their own authority token.
    if server_channel.scheme in ("tcp", "http", "aio"):
        listen_authority = "127.0.0.1:0"
    else:
        listen_authority = "auto"
    server_services = ChannelServices()
    host = RemotingHost(name="pingpong-server", services=server_services)
    binding = host.listen(server_channel, listen_authority)
    host.register_well_known(_EchoServer, "pingpong", WellKnownObjectMode.SINGLETON)
    client_services = ChannelServices()
    client_channel = channel_cls()
    client_services.register_channel(client_channel)
    client = RemotingHost(name="pingpong-client", services=client_services)
    try:
        proxy = client.get_object(
            f"{client_channel.scheme}://{binding.authority}/pingpong"
        )
        payload = int_payload(n_ints)
        proxy.echo(payload)  # warm up (connect, lazy singleton)
        started = time.perf_counter()
        for _ in range(rounds):
            result = proxy.echo(payload)
        elapsed = time.perf_counter() - started
        assert len(result) == n_ints
        return elapsed / rounds
    finally:
        client.close()
        host.close()
        client_channel.close()


def _channel_for(channel_kind: str):  # type: ignore[no-untyped-def]
    if channel_kind.startswith("chaos+"):
        # Zero-fault plan: measures the pure interposition cost of the
        # chaos wrapper (one RNG draw + counter per call), not faults.
        from repro.chaos import FaultPlan

        return channels_create(channel_kind, chaos_plan=FaultPlan(seed=0))
    return channels_create(channel_kind)


def live_concurrent_pingpong(
    n_ints: int,
    callers: int,
    calls_per_caller: int = 100,
    channel_kind: str = "tcp",
) -> float:
    """Aggregate calls/second with *callers* concurrent proxy threads.

    The single-caller ping-pong above measures latency; this driver
    measures what the transport does under concurrency, which is where
    the thread-per-socket :class:`TcpChannel` and the multiplexed
    :class:`repro.aio.AioTcpChannel` diverge: tcp spends a pooled socket
    (client) and an OS thread (server) per concurrent caller, aio keeps
    every caller's request in flight on one pipelined socket per peer.
    All callers share one channel and one proxy, as remoting clients in
    one process would.
    """
    import threading

    from repro.channels.services import ChannelServices

    server_services = ChannelServices()
    host = RemotingHost(name="pingpong-server", services=server_services)
    server_channel = _channel_for(channel_kind)
    authority = (
        "127.0.0.1:0"
        if server_channel.scheme in ("tcp", "http", "aio")
        else "auto"
    )
    binding = host.listen(server_channel, authority)
    host.register_well_known(_EchoServer, "pingpong", WellKnownObjectMode.SINGLETON)
    client_services = ChannelServices()
    client_channel = _channel_for(channel_kind)
    client_services.register_channel(client_channel)
    client = RemotingHost(name="pingpong-client", services=client_services)
    try:
        proxy = client.get_object(
            f"{client_channel.scheme}://{binding.authority}/pingpong"
        )
        payload = int_payload(n_ints)
        proxy.echo(payload)  # warm up (connect, lazy singleton)
        barrier = threading.Barrier(callers + 1)
        failures: list[BaseException] = []

        def worker() -> None:
            try:
                barrier.wait()
                for _ in range(calls_per_caller):
                    proxy.echo(payload)
            except BaseException as exc:  # noqa: BLE001 - reraised below
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, daemon=True) for _ in range(callers)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if failures:
            raise failures[0]
        return callers * calls_per_caller / elapsed
    finally:
        client.close()
        host.close()
        client_channel.close()


class _IEcho(Remote):
    @remote_method
    def echo(self, values):  # type: ignore[no-untyped-def]
        """Echo the payload back."""
        raise NotImplementedError


class _EchoRemote(UnicastRemoteObject, _IEcho):
    def echo(self, values):  # type: ignore[no-untyped-def]
        return values


def live_pingpong_rmi(n_ints: int, rounds: int = 10) -> float:
    """Average round-trip seconds over real sockets (RMI analog)."""
    registry_runtime, _registry = LocateRegistry.create_registry()
    server = _EchoRemote()
    try:
        endpoint = registry_runtime.endpoint
        Naming.rebind(f"rmi://{endpoint}/echo", server)
        stub = Naming.lookup(f"rmi://{endpoint}/echo", _IEcho)
        payload = int_payload(n_ints)
        stub.echo(payload)  # warm up
        started = time.perf_counter()
        for _ in range(rounds):
            result = stub.echo(payload)
        elapsed = time.perf_counter() - started
        assert len(result) == n_ints
        return elapsed / rounds
    finally:
        from repro.rmi.runtime import default_runtime

        default_runtime().unexport(server)
        registry_runtime.close()


def live_pingpong_mpi(n_ints: int, rounds: int = 10) -> float:
    """Average round-trip seconds through the MPI analog (2 ranks)."""

    def main(comm):  # type: ignore[no-untyped-def]
        payload = int_payload(n_ints)
        if comm.rank == 0:
            comm.send(payload, dest=1, tag=0)  # warm up
            comm.recv(source=1, tag=1)
            started = time.perf_counter()
            for _ in range(rounds):
                comm.send(payload, dest=1, tag=0)
                comm.recv(source=1, tag=1)
            return (time.perf_counter() - started) / rounds
        for _ in range(rounds + 1):
            data, _status = comm.recv(source=0, tag=0)
            comm.send(data, dest=0, tag=1)
        return None

    results = run_mpi(2, main)
    return results[0]


def live_pingpong_nio(n_ints: int, rounds: int = 10) -> float:
    """Average round-trip seconds over real sockets (nio analog).

    Framing is hand-rolled (length prefix + raw buffer), as a java.nio
    user would write it.
    """
    import threading

    payload_bytes = int_payload(n_ints).tobytes()
    frame_size = 4 + len(payload_bytes)
    server = ServerSocketChannel.open().bind(("127.0.0.1", 0))
    ready = threading.Event()

    def serve() -> None:
        channel = server.accept()
        buffer = ByteBuffer.allocate(frame_size)
        try:
            for _ in range(rounds + 1):
                buffer.clear()
                channel.read_fully(buffer)
                buffer.flip()
                channel.write_fully(buffer)
        finally:
            channel.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    client = SocketChannel.open(server.local_address)
    try:
        out = ByteBuffer.allocate(frame_size)

        def round_trip() -> None:
            out.clear()
            out.put_int(len(payload_bytes)).put(payload_bytes)
            out.flip()
            client.write_fully(out)
            out.clear()
            client.read_fully(out)

        round_trip()  # warm up
        started = time.perf_counter()
        for _ in range(rounds):
            round_trip()
        elapsed = time.perf_counter() - started
        ready.set()
        return elapsed / rounds
    finally:
        client.close()
        thread.join(timeout=5.0)
        server.close()
