"""Table/series formatting for benchmark output.

The benchmarks print the same rows/series the paper's figures plot, in
plain aligned text, so a run's output can be compared against the paper
(and against EXPERIMENTS.md) by eye.
"""

from __future__ import annotations

from typing import Sequence


def log_sizes(start: float = 1.0, stop: float = 1024 * 1024, per_decade: int = 2) -> list[int]:
    """Integer message sizes on a log scale (Fig. 8's x axis)."""
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    sizes: list[int] = []
    size = float(start)
    ratio = 10.0 ** (1.0 / per_decade)
    while size <= stop * 1.0001:
        value = max(1, int(round(size)))
        if not sizes or value != sizes[-1]:
            sizes.append(value)
        size *= ratio
    return sizes


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width aligned table; numbers right-aligned, text left."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for original, row in zip(rows, rendered):
        lines.append(
            "  ".join(
                cell.rjust(widths[i])
                if isinstance(original[i], (int, float))
                else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def human_bytes(size: float) -> str:
    """1 B / 1.0 KB / 1.0 MB labels for size axes."""
    if size < 1024:
        return f"{int(size)} B"
    if size < 1024 * 1024:
        return f"{size / 1024:.3g} KB"
    return f"{size / (1024 * 1024):.3g} MB"
