"""FaultyChannel: a channel wrapper that injects transport faults.

Wraps any :class:`~repro.channels.base.Channel` and registers under the
scheme ``chaos+<inner>`` (``chaos+tcp``, ``chaos+aio``, ``chaos+loopback``)
so a whole cluster can be pointed at it by URI scheme alone — every proxy,
factory and heartbeat probe then runs through the fault schedule, which
is exactly the coverage a self-healing runtime has to survive.

Faults come from two sources, checked in order:

1. the :class:`~repro.chaos.controller.ChaosController` (scripted,
   time/authority-targeted: "kill node 2 at t=1s", "30% drop for
   500 ms"), when one is attached;
2. the :class:`~repro.chaos.faults.FaultPlan` (seeded random schedule).

Injected failures raise :class:`~repro.errors.FaultInjectedError` (a
:class:`~repro.errors.ChannelError`), so retry policies, circuit breakers
and dead-node bookkeeping treat them exactly like organic failures.
Server-side behaviour is untouched: ``listen`` delegates to the inner
channel, and post-call faults (``recv_drop``, ``disconnect``,
``truncate``) deliberately let the server execute before the client-side
failure — reproducing the lost-response ambiguity that makes distributed
failure handling hard.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Mapping

from repro.channels.base import Channel, RequestHandler, ServerBinding
from repro.errors import FaultInjectedError
from repro.chaos.faults import FaultDecision, FaultKind, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.controller import ChaosController
    from repro.telemetry import MetricsRegistry


class FaultyChannel(Channel):
    """Delegates to an inner channel, injecting faults per plan/controller.

    Construction with ``FaultPlan()`` (zero rates) is the pass-through
    configuration: calls are forwarded with only a per-call decision
    lookup added — the overhead benchmark holds this under 10% of a bare
    call.
    """

    def __init__(
        self,
        inner: Channel,
        plan: FaultPlan | None = None,
        controller: "ChaosController | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        super().__init__(inner.formatter)
        self.inner = inner
        self.scheme = f"chaos+{inner.scheme}"
        self.plan = plan if plan is not None else FaultPlan()
        self.controller = controller
        self._counters = None
        if metrics is not None:
            self._counters = {
                kind: metrics.counter(
                    f"chaos.injected.{kind.value}",
                    f"{kind.value} faults injected",
                )
                for kind in FaultKind
                if kind is not FaultKind.NONE
            }

    # -- server side (unaffected by client-fault injection) ---------------

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        return self.inner.listen(authority, handler)

    # -- client side -------------------------------------------------------

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        decision = self._decide(authority)
        kind = decision.kind
        if kind is FaultKind.NONE:
            return self.inner.call(authority, path, body, headers)
        self._count(kind)
        if decision.latency_s > 0:
            time.sleep(decision.latency_s)
        if kind is FaultKind.LATENCY:
            return self.inner.call(authority, path, body, headers)
        if kind is FaultKind.CONNECT_REFUSED:
            raise FaultInjectedError(
                f"chaos: connect to {authority} refused"
            )
        if kind is FaultKind.SEND_DROP:
            raise FaultInjectedError(
                f"chaos: request to {authority}/{path} dropped"
            )
        # Post-call faults: the server executes, the client still fails.
        response = self.inner.call(authority, path, body, headers)
        if kind is FaultKind.TRUNCATE:
            keep = min(max(decision.truncate_to, 0), max(len(response) - 1, 0))
            return response[:keep]
        if kind is FaultKind.RECV_DROP:
            raise FaultInjectedError(
                f"chaos: response from {authority}/{path} dropped"
            )
        raise FaultInjectedError(
            f"chaos: connection to {authority} lost mid-call"
        )

    def _decide(self, authority: str) -> FaultDecision:
        if self.controller is not None:
            scripted = self.controller.decide(authority)
            if scripted is not None:
                return scripted
        return self.plan.draw()

    def _count(self, kind: FaultKind) -> None:
        if self._counters is not None:
            self._counters[kind].inc()

    def close(self) -> None:
        self.inner.close()
