"""Fault-injection substrate (``repro.chaos``).

Chaos engineering for the SCOOPP runtime: wrap any channel in a
:class:`FaultyChannel` (scheme ``chaos+tcp`` / ``chaos+aio``) and every
call through it is subject to a deterministic, seeded fault schedule —
connect refusals, dropped requests/responses, added latency, truncated
payloads, mid-call disconnects.  A :class:`ChaosController` layers
scripted scenarios on top ("kill node 2 at t=1s", "30% drop for
500 ms") for integration tests and demos.

The point is reproducibility: a failure found under seed 1337 replays
under seed 1337.  CI runs fixed seeds plus one random seed whose value
is echoed into the log.
"""

from repro.chaos.channel import FaultyChannel
from repro.chaos.controller import ChaosController
from repro.chaos.faults import (
    POST_CALL_FAULTS,
    PRE_CALL_FAULTS,
    FaultDecision,
    FaultKind,
    FaultPlan,
    plan_from_percentages,
)

__all__ = [
    "ChaosController",
    "FaultDecision",
    "FaultKind",
    "FaultPlan",
    "FaultyChannel",
    "POST_CALL_FAULTS",
    "PRE_CALL_FAULTS",
    "plan_from_percentages",
]
