"""Deterministic fault schedules: what goes wrong, when, reproducibly.

A :class:`FaultPlan` is a seeded random schedule over the fault taxonomy
the transport layer can suffer (see :data:`FaultKind`).  Determinism is
the whole point: the same seed produces the same fault sequence for the
same call sequence, so a failure found by a randomized CI run is
reproducible from its logged seed alone.

The plan answers one question per call — :meth:`FaultPlan.draw` returns
the :class:`FaultDecision` for this call — and the
:class:`~repro.chaos.channel.FaultyChannel` executes it.  Scripted,
time-targeted faults ("kill node 2 at t=1s") layer on top via
:class:`~repro.chaos.controller.ChaosController`, which consults wall
time and authority, not the random stream.
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    """The transport fault taxonomy the chaos layer can inject.

    The first three fail the call without reaching the server; the last
    three let the server execute (the dangerous half: the caller cannot
    tell a lost response from a lost request — classic at-most-once
    ambiguity).
    """

    NONE = "none"  #: no fault: the call proceeds untouched
    CONNECT_REFUSED = "connect_refused"  #: dial fails, server never sees it
    SEND_DROP = "send_drop"  #: request lost on the wire before the server
    LATENCY = "latency"  #: added delay, then the call proceeds normally
    RECV_DROP = "recv_drop"  #: server executed, response lost
    DISCONNECT = "disconnect"  #: connection torn down after the exchange
    TRUNCATE = "truncate"  #: response delivered with its tail cut off


#: Fault kinds injected *before* the inner call (server never executes).
PRE_CALL_FAULTS = frozenset(
    {FaultKind.CONNECT_REFUSED, FaultKind.SEND_DROP}
)

#: Fault kinds injected *after* the inner call (server executed).
POST_CALL_FAULTS = frozenset(
    {FaultKind.RECV_DROP, FaultKind.DISCONNECT, FaultKind.TRUNCATE}
)


@dataclass(frozen=True)
class FaultDecision:
    """What the channel must do to one call."""

    kind: FaultKind
    latency_s: float = 0.0  # extra delay (LATENCY, or paired with a fault)
    truncate_to: int = -1  # TRUNCATE: keep this many response bytes


@dataclass
class FaultPlan:
    """Seeded per-call fault schedule.

    *rates* maps :class:`FaultKind` to a probability in [0, 1]; kinds are
    evaluated in a fixed order and at most one fires per call, so the
    sum of rates is the total fault probability.  ``FaultPlan(seed=7)``
    with no rates is a **zero-fault plan** — calls pass through
    untouched, which is what the overhead benchmark measures.

    The plan is thread-safe: concurrent callers draw from one seeded
    stream under a lock.  Draw order then depends on thread scheduling,
    so strict determinism holds for single-threaded call sequences (the
    property tests) while multi-threaded runs stay reproducible in
    *distribution*; log the seed either way.
    """

    seed: int = 0
    rates: dict[FaultKind, float] = field(default_factory=dict)
    latency_s: tuple[float, float] = (0.001, 0.02)
    max_faults: int | None = None  # stop injecting after this many

    def __post_init__(self) -> None:
        for kind, rate in self.rates.items():
            if not isinstance(kind, FaultKind):
                raise ValueError(f"rates key {kind!r} is not a FaultKind")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind} out of [0, 1]: {rate}")
        if sum(self.rates.values()) > 1.0 + 1e-9:
            raise ValueError("fault rates must sum to <= 1")
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._injected = 0
        self._draws = 0

    # -- drawing -----------------------------------------------------------

    def draw(self, response_size_hint: int = 0) -> FaultDecision:
        """The fault decision for the next call (one per call)."""
        with self._lock:
            self._draws += 1
            if (
                self.max_faults is not None
                and self._injected >= self.max_faults
            ):
                return FaultDecision(FaultKind.NONE)
            roll = self._rng.random()
            cumulative = 0.0
            # Iterate in enum declaration order for determinism across
            # runs regardless of dict insertion order.
            for kind in FaultKind:
                rate = self.rates.get(kind, 0.0)
                if rate <= 0.0:
                    continue
                cumulative += rate
                if roll < cumulative:
                    self._injected += 1
                    return self._materialize(kind, response_size_hint)
            return FaultDecision(FaultKind.NONE)

    def _materialize(
        self, kind: FaultKind, response_size_hint: int
    ) -> FaultDecision:
        low, high = self.latency_s
        if kind is FaultKind.LATENCY:
            return FaultDecision(kind, latency_s=self._rng.uniform(low, high))
        if kind is FaultKind.TRUNCATE:
            # Keep a strict prefix: at least one byte must go missing so
            # the decode layer is guaranteed to see a short payload.
            keep = self._rng.randrange(max(1, response_size_hint or 64))
            return FaultDecision(kind, truncate_to=keep)
        return FaultDecision(kind)

    # -- bookkeeping -------------------------------------------------------

    @property
    def injected(self) -> int:
        with self._lock:
            return self._injected

    @property
    def draws(self) -> int:
        with self._lock:
            return self._draws

    def describe(self) -> str:
        """One-line reproduction recipe (log this next to failures)."""
        rates = {k.value: v for k, v in sorted(
            self.rates.items(), key=lambda item: item[0].value
        ) if v > 0}
        return f"FaultPlan(seed={self.seed}, rates={rates})"


def plan_from_percentages(
    seed: int,
    *,
    connect_refused: float = 0.0,
    send_drop: float = 0.0,
    latency: float = 0.0,
    recv_drop: float = 0.0,
    disconnect: float = 0.0,
    truncate: float = 0.0,
    latency_s: tuple[float, float] = (0.001, 0.02),
    max_faults: int | None = None,
) -> FaultPlan:
    """Keyword-friendly :class:`FaultPlan` constructor for tests."""
    rates = {
        FaultKind.CONNECT_REFUSED: connect_refused,
        FaultKind.SEND_DROP: send_drop,
        FaultKind.LATENCY: latency,
        FaultKind.RECV_DROP: recv_drop,
        FaultKind.DISCONNECT: disconnect,
        FaultKind.TRUNCATE: truncate,
    }
    return FaultPlan(
        seed=seed,
        rates={k: v for k, v in rates.items() if v > 0},
        latency_s=latency_s,
        max_faults=max_faults,
    )
