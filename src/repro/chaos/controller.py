"""ChaosController: scripted failure scenarios over faulty channels.

The :class:`~repro.chaos.faults.FaultPlan` answers "fail 2% of calls,
forever"; the controller answers "kill node 2 one second in" and "drop
30% of everything for the next 500 ms" — the scenario language an
integration test or demo speaks:

    controller = ChaosController(seed=42)
    controller.kill_after(1.0, node.base_uri)        # node 2 dies at t=1s
    controller.drop_for(0.5, rate=0.3)               # 30% drop window
    ...
    controller.close()                               # cancel timers

One controller is shared by every :class:`~repro.chaos.FaultyChannel` of
a cluster, so a kill verdict applies no matter which node's channel
carries the call.  Authorities may be given bare (``127.0.0.1:4711``) or
as base URIs (``chaos+tcp://127.0.0.1:4711``); schemes are stripped.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.chaos.faults import FaultDecision, FaultKind


def strip_scheme(authority_or_uri: str) -> str:
    """``scheme://host:port[/...]`` → ``host:port`` (idempotent)."""
    _scheme, sep, rest = authority_or_uri.partition("://")
    if not sep:
        return authority_or_uri
    return rest.split("/", 1)[0]


@dataclass(frozen=True)
class _Window:
    """One probabilistic fault window: *kind* at *rate* until *until*."""

    kind: FaultKind
    rate: float
    until: float
    authority: str | None  # None = every authority


class ChaosController:
    """Scripted, time-targeted fault injection shared across channels.

    Thread-safe; scripted actions scheduled with :meth:`at` /
    :meth:`kill_after` run on daemon timer threads and must be cancelled
    with :meth:`close` when the scenario ends.
    """

    def __init__(
        self,
        seed: int = 0,
        clock=time.monotonic,  # type: ignore[no-untyped-def]
    ) -> None:
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._clock = clock
        self._killed: set[str] = set()
        self._windows: list[_Window] = []
        self._timers: list[threading.Timer] = []
        self._closed = False

    # -- verdicts ----------------------------------------------------------

    def kill(self, authority_or_uri: str) -> None:
        """Every call to this authority fails to connect from now on."""
        with self._lock:
            self._killed.add(strip_scheme(authority_or_uri))

    def revive(self, authority_or_uri: str) -> None:
        with self._lock:
            self._killed.discard(strip_scheme(authority_or_uri))

    def is_killed(self, authority_or_uri: str) -> bool:
        with self._lock:
            return strip_scheme(authority_or_uri) in self._killed

    def killed_authorities(self) -> list[str]:
        with self._lock:
            return sorted(self._killed)

    def drop_for(
        self,
        duration_s: float,
        rate: float = 1.0,
        kind: FaultKind = FaultKind.SEND_DROP,
        authority: str | None = None,
    ) -> None:
        """Fail *rate* of calls with *kind* for the next *duration_s*."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate out of [0, 1]: {rate}")
        window = _Window(
            kind=kind,
            rate=rate,
            until=self._clock() + duration_s,
            authority=strip_scheme(authority) if authority else None,
        )
        with self._lock:
            self._windows.append(window)

    # -- scripting ---------------------------------------------------------

    def at(self, delay_s: float, action, *args) -> threading.Timer:  # type: ignore[no-untyped-def]
        """Run *action(args)* after *delay_s* (daemon timer, see close)."""
        timer = threading.Timer(delay_s, action, args=args)
        timer.daemon = True
        with self._lock:
            if self._closed:
                raise RuntimeError("controller is closed")
            self._timers.append(timer)
        timer.start()
        return timer

    def kill_after(self, delay_s: float, authority_or_uri: str) -> threading.Timer:
        """Scenario verb: "kill node X at t=delay_s"."""
        return self.at(delay_s, self.kill, authority_or_uri)

    def revive_after(self, delay_s: float, authority_or_uri: str) -> threading.Timer:
        return self.at(delay_s, self.revive, authority_or_uri)

    # -- the channel-facing surface ---------------------------------------

    def decide(self, authority: str) -> FaultDecision | None:
        """Scripted decision for one call, or None to defer to the plan."""
        authority = strip_scheme(authority)
        now = self._clock()
        with self._lock:
            if authority in self._killed:
                return FaultDecision(FaultKind.CONNECT_REFUSED)
            live = [w for w in self._windows if w.until > now]
            if len(live) != len(self._windows):
                self._windows = live
            for window in live:
                if window.authority not in (None, authority):
                    continue
                if self._rng.random() < window.rate:
                    return FaultDecision(window.kind)
        return None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Cancel pending scripted actions (idempotent)."""
        with self._lock:
            self._closed = True
            timers, self._timers = self._timers, []
        for timer in timers:
            timer.cancel()

    def __enter__(self) -> "ChaosController":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
