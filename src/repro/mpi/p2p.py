"""Point-to-point machinery: mailboxes, matching, requests.

Each rank owns a :class:`Mailbox`.  A send deposits an envelope in the
destination's mailbox (buffered/eager semantics — like ``MPI_Send`` for
small messages in every real implementation); a receive scans for the
first envelope matching ``(source, tag)`` under MPI's wildcard and
non-overtaking rules.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import MpiError

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Envelope:
    """One in-flight message."""

    source: int
    tag: int
    payload: bytes


@dataclass
class Status:
    """Receive status (MPI_Status analog)."""

    source: int
    tag: int
    count: int


class Mailbox:
    """Arrival-ordered message store with MPI matching semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._messages: list[Envelope] = []
        self._closed = False

    def deposit(self, envelope: Envelope) -> None:
        with self._arrived:
            if self._closed:
                raise MpiError("mailbox is closed (world finalized)")
            self._messages.append(envelope)
            self._arrived.notify_all()

    def _match_index(self, source: int, tag: int) -> int | None:
        for index, envelope in enumerate(self._messages):
            if source not in (ANY_SOURCE, envelope.source):
                continue
            if tag not in (ANY_TAG, envelope.tag):
                continue
            return index
        return None

    def collect(self, source: int, tag: int, timeout: float | None) -> Envelope:
        """Blocking matched receive; raises MpiError on timeout/shutdown."""
        deadline = None
        with self._arrived:
            while True:
                index = self._match_index(source, tag)
                if index is not None:
                    return self._messages.pop(index)
                if self._closed:
                    raise MpiError("world finalized while receiving")
                if timeout is not None:
                    import time

                    if deadline is None:
                        deadline = time.monotonic() + timeout
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise MpiError(
                            f"recv(source={source}, tag={tag}) timed out"
                        )
                    self._arrived.wait(remaining)
                else:
                    self._arrived.wait()

    def try_collect(self, source: int, tag: int) -> Envelope | None:
        """Non-blocking matched receive (iprobe + recv)."""
        with self._arrived:
            index = self._match_index(source, tag)
            if index is None:
                return None
            return self._messages.pop(index)

    def close(self) -> None:
        with self._arrived:
            self._closed = True
            self._arrived.notify_all()

    def pending(self) -> int:
        with self._lock:
            return len(self._messages)


class Request:
    """Handle to a non-blocking operation (MPI_Request analog).

    ``isend`` requests complete immediately (buffered semantics); ``irecv``
    requests complete when a matching message is collected by ``wait`` or
    observed by ``test``.
    """

    def __init__(
        self,
        mailbox: Mailbox | None = None,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        ready: Envelope | None = None,
    ) -> None:
        self._mailbox = mailbox
        self._source = source
        self._tag = tag
        self._envelope = ready
        self._done = ready is not None or mailbox is None
        self._lock = threading.Lock()

    @classmethod
    def completed_send(cls) -> "Request":
        return cls()

    def test(self) -> bool:
        """True if the operation has completed (non-blocking)."""
        with self._lock:
            if self._done:
                return True
            envelope = self._mailbox.try_collect(self._source, self._tag)
            if envelope is None:
                return False
            self._envelope = envelope
            self._done = True
            return True

    def wait(self, timeout: float | None = None) -> tuple[bytes, Status] | None:
        """Block until complete; returns (payload, status) for receives."""
        with self._lock:
            if not self._done:
                envelope = self._mailbox.collect(
                    self._source, self._tag, timeout
                )
                self._envelope = envelope
                self._done = True
            if self._envelope is None:
                return None  # send request: nothing to deliver
            envelope = self._envelope
            return (
                envelope.payload,
                Status(
                    source=envelope.source,
                    tag=envelope.tag,
                    count=len(envelope.payload),
                ),
            )


def as_payload(data: Any) -> bytes:
    """Normalize a send buffer to bytes.

    Accepts anything with the buffer protocol (bytes, bytearray,
    memoryview, array.array, contiguous ndarray).  Rich objects are
    rejected: MPI moves buffers, not object graphs — that distinction is
    the paper's whole §2 comparison.
    """
    if isinstance(data, bytes):
        return data
    try:
        return bytes(memoryview(data))
    except TypeError:
        raise MpiError(
            f"cannot send {type(data).__qualname__}: MPI sends contiguous "
            f"buffers; pack structured data with PackBuffer first"
        ) from None
