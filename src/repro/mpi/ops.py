"""Reduction operators for MPI collectives.

Operate on numbers or on equal-length numeric sequences (elementwise),
mirroring MPI's typed reductions over count > 1 buffers.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import MpiError


class ReduceOp:
    """Named associative/commutative binary operator."""

    def __init__(self, name: str, scalar: Callable[[Any, Any], Any]) -> None:
        self.name = name
        self._scalar = scalar

    def combine(self, left: Any, right: Any) -> Any:
        if _is_sequence(left) or _is_sequence(right):
            if not (_is_sequence(left) and _is_sequence(right)):
                raise MpiError(
                    f"{self.name}: cannot reduce sequence with scalar"
                )
            if len(left) != len(right):
                raise MpiError(
                    f"{self.name}: length mismatch {len(left)} vs {len(right)}"
                )
            return [self._scalar(a, b) for a, b in zip(left, right)]
        return self._scalar(left, right)

    def __repr__(self) -> str:
        return f"<ReduceOp {self.name}>"


def _is_sequence(value: Any) -> bool:
    return isinstance(value, Sequence) and not isinstance(value, (str, bytes))


SUM = ReduceOp("SUM", lambda a, b: a + b)
PROD = ReduceOp("PROD", lambda a, b: a * b)
MAX = ReduceOp("MAX", lambda a, b: a if a >= b else b)
MIN = ReduceOp("MIN", lambda a, b: a if a <= b else b)
