"""Explicit pack/unpack buffers (MPI_Pack / MPI_Unpack).

Paper §2: "MPI requires explicit packing and unpacking of messages (i.e.,
a data structure residing in a non-continuous memory must be packed into a
continuous memory area before being sent and must be unpacked in the
receiver)."  This module is that chore, faithfully: the receiver must
unpack fields in the same order and with the same datatypes the sender
packed them — a type tag per element makes violations loud errors instead
of silent corruption.

This is exactly the code C# remoting made disappear from ParC++'s proxy
objects (§3.2: "the main simplification of PO objects arises from the
elimination of code required to pack a method tag and method arguments
into a MPI message").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

from repro.errors import PackError


@dataclass(frozen=True)
class Datatype:
    """One MPI datatype: a struct format plus a one-byte wire tag."""

    name: str
    format: str
    tag: int

    @property
    def size(self) -> int:
        return struct.calcsize(self.format)


INT = Datatype("MPI_INT", ">i", 1)
LONG = Datatype("MPI_LONG", ">q", 2)
DOUBLE = Datatype("MPI_DOUBLE", ">d", 3)
CHAR = Datatype("MPI_CHAR", ">c", 4)

_BY_TAG = {datatype.tag: datatype for datatype in (INT, LONG, DOUBLE, CHAR)}

_COUNT = struct.Struct(">I")


class PackBuffer:
    """Write side: pack typed elements into one contiguous buffer."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def pack(self, values: Any, datatype: Datatype) -> "PackBuffer":
        """Append *values* (a scalar or a sequence) as *datatype* elements."""
        if isinstance(values, (str, bytes)):
            if datatype is not CHAR:
                raise PackError(
                    f"{datatype.name} cannot pack text; use CHAR"
                )
            data = values.encode("utf-8") if isinstance(values, str) else values
            self._parts.append(bytes((datatype.tag,)) + _COUNT.pack(len(data)) + data)
            return self
        try:
            iterator = iter(values)
        except TypeError:
            iterator = iter((values,))
        items = list(iterator)
        encoder = struct.Struct(datatype.format)
        try:
            body = b"".join(encoder.pack(item) for item in items)
        except struct.error as exc:
            raise PackError(
                f"cannot pack {items!r} as {datatype.name}: {exc}"
            ) from exc
        self._parts.append(bytes((datatype.tag,)) + _COUNT.pack(len(items)) + body)
        return self

    def getvalue(self) -> bytes:
        """The contiguous packed buffer, ready for ``comm.send``."""
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)


class UnpackBuffer:
    """Read side: unpack elements in pack order, with type checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def unpack(self, datatype: Datatype, count: int | None = None) -> Any:
        """Read the next packed run, which must be of *datatype*.

        Returns a scalar when the run holds one element (and *count* is
        None or 1), else a list.  CHAR runs return ``bytes``.
        """
        if self._offset >= len(self._data):
            raise PackError("unpack past end of buffer")
        tag = self._data[self._offset]
        actual = _BY_TAG.get(tag)
        if actual is None:
            raise PackError(f"corrupt buffer: unknown datatype tag {tag}")
        if actual is not datatype:
            raise PackError(
                f"type mismatch: buffer holds {actual.name}, "
                f"caller asked for {datatype.name}"
            )
        start = self._offset + 1
        if start + _COUNT.size > len(self._data):
            raise PackError("truncated buffer: run header cut short")
        (stored_count,) = _COUNT.unpack_from(self._data, start)
        if count is not None and count != stored_count:
            raise PackError(
                f"count mismatch: buffer run holds {stored_count} "
                f"elements, caller asked for {count}"
            )
        body_start = start + _COUNT.size
        if datatype is CHAR:
            end = body_start + stored_count
            if end > len(self._data):
                raise PackError("truncated CHAR run")
            self._offset = end
            return self._data[body_start:end]
        decoder = struct.Struct(datatype.format)
        end = body_start + decoder.size * stored_count
        if end > len(self._data):
            raise PackError(f"truncated {datatype.name} run")
        values = [
            decoder.unpack_from(self._data, body_start + index * decoder.size)[0]
            for index in range(stored_count)
        ]
        self._offset = end
        if stored_count == 1 and count is None:
            return values[0]
        return values

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset
