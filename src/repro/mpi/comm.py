"""World, communicators, the SPMD launcher, and collectives.

:func:`run_mpi` is the ``mpirun`` analog: it starts ``size`` rank threads,
each running the user's main function with its own :class:`Comm`, and
joins them, propagating the first failure.  Collectives use binomial trees
(log₂ rounds), like small-message algorithms in real MPI implementations.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.errors import MpiError, RankError
from repro.mpi.ops import ReduceOp
from repro.mpi.p2p import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    Mailbox,
    Request,
    Status,
    as_payload,
)

#: Tag space reserved for collective internals, above user tags.
_COLLECTIVE_TAG_BASE = 1 << 24


class World:
    """Shared state of one MPI job: the mailboxes of all ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise MpiError(f"world size must be >= 1, got {size}")
        self.size = size
        self._mailboxes = [Mailbox() for _ in range(size)]
        self._finalized = False
        self._collective_epoch = [0] * size

    def comm(self, rank: int) -> "Comm":
        self._check_rank(rank)
        return Comm(self, rank)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise RankError(
                f"rank {rank} out of range for world of size {self.size}"
            )

    def mailbox(self, rank: int) -> Mailbox:
        self._check_rank(rank)
        return self._mailboxes[rank]

    def finalize(self) -> None:
        self._finalized = True
        for mailbox in self._mailboxes:
            mailbox.close()


class Comm:
    """Per-rank communicator handle (MPI_COMM_WORLD analog)."""

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank
        self._collective_seq = 0

    @property
    def size(self) -> int:
        return self.world.size

    # -- point to point -----------------------------------------------------

    def send(self, data: Any, dest: int, tag: int = 0) -> None:
        """Blocking buffered send of a contiguous buffer (MPI_Send)."""
        self._check_user_tag(tag)
        payload = as_payload(data)
        self.world.mailbox(dest).deposit(
            Envelope(source=self.rank, tag=tag, payload=payload)
        )

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> tuple[bytes, Status]:
        """Blocking matched receive (MPI_Recv); returns (payload, status)."""
        envelope = self.world.mailbox(self.rank).collect(source, tag, timeout)
        return envelope.payload, Status(
            source=envelope.source, tag=envelope.tag, count=len(envelope.payload)
        )

    def isend(self, data: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; completes immediately (buffered semantics)."""
        self.send(data, dest, tag)
        return Request.completed_send()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; complete via ``request.wait()``/``test()``."""
        return Request(
            mailbox=self.world.mailbox(self.rank), source=source, tag=tag
        )

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is waiting (no dequeue)."""
        mailbox = self.world.mailbox(self.rank)
        with mailbox._lock:
            return mailbox._match_index(source, tag) is not None

    @staticmethod
    def _check_user_tag(tag: int) -> None:
        if not 0 <= tag < _COLLECTIVE_TAG_BASE:
            raise MpiError(
                f"user tags must be in [0, {_COLLECTIVE_TAG_BASE}), got {tag}"
            )

    # -- collectives ----------------------------------------------------

    # Collectives piggyback a per-rank sequence number into the tag so
    # that back-to-back collectives cannot cross-match.  All ranks must
    # call collectives in the same order (an MPI requirement).

    def _next_collective_tag(self) -> int:
        self._collective_seq += 1
        return _COLLECTIVE_TAG_BASE + (self._collective_seq & 0xFFFF)

    def _send_obj(self, obj: Any, dest: int, tag: int) -> None:
        # Collectives move small control values; encode with the shared
        # binary formatter (user payloads in p2p stay raw buffers).
        from repro.serialization import BinaryFormatter

        payload = BinaryFormatter().dumps(obj)
        self.world.mailbox(dest).deposit(
            Envelope(source=self.rank, tag=tag, payload=payload)
        )

    def _recv_obj(self, source: int, tag: int) -> Any:
        from repro.serialization import BinaryFormatter

        envelope = self.world.mailbox(self.rank).collect(source, tag, None)
        return BinaryFormatter().loads(envelope.payload)

    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast *value* from *root* to every rank (binomial tree)."""
        self.world._check_rank(root)
        tag = self._next_collective_tag()
        size = self.size
        relative = (self.rank - root) % size
        mask = 1
        result = value if self.rank == root else None
        # Receive phase: find the bit that delivers to us.
        while mask < size:
            if relative & mask:
                source = (relative - mask + root) % size
                result = self._recv_obj(source, tag)
                break
            mask <<= 1
        # Send phase: forward to our subtree (halving the stride).
        mask >>= 1
        while mask >= 1:
            child = relative + mask
            if child < size:
                self._send_obj(result, (child + root) % size, tag)
            mask >>= 1
        return result

    def reduce(self, value: Any, op: ReduceOp, root: int = 0) -> Any:
        """Reduce to *root*; other ranks get None (binomial tree)."""
        self.world._check_rank(root)
        tag = self._next_collective_tag()
        size = self.size
        relative = (self.rank - root) % size
        accumulated = value
        mask = 1
        while mask < size:
            if relative & mask:
                parent = (relative & ~mask) % size
                self._send_obj(accumulated, (parent + root) % size, tag)
                break
            child = relative | mask
            if child < size:
                incoming = self._recv_obj((child + root) % size, tag)
                accumulated = op.combine(accumulated, incoming)
            mask <<= 1
        return accumulated if self.rank == root else None

    def allreduce(self, value: Any, op: ReduceOp) -> Any:
        """Reduce then broadcast the result to all ranks."""
        reduced = self.reduce(value, op, root=0)
        return self.bcast(reduced, root=0)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Collect one value per rank at *root*, ordered by rank."""
        self.world._check_rank(root)
        tag = self._next_collective_tag()
        if self.rank != root:
            self._send_obj(value, root, tag)
            return None
        values: list[Any] = [None] * self.size
        values[root] = value
        for rank in range(self.size):
            if rank == root:
                continue
            envelope = self.world.mailbox(self.rank).collect(rank, tag, None)
            from repro.serialization import BinaryFormatter

            values[rank] = BinaryFormatter().loads(envelope.payload)
        return values

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Distribute ``values[rank]`` from *root* to each rank."""
        self.world._check_rank(root)
        tag = self._next_collective_tag()
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise MpiError(
                    f"scatter at root needs exactly {self.size} values"
                )
            for rank, value in enumerate(values):
                if rank != root:
                    self._send_obj(value, rank, tag)
            return values[root]
        return self._recv_obj(root, tag)

    def allgather(self, value: Any) -> list[Any]:
        """Every rank gets [value of rank 0, ..., value of rank n-1]."""
        gathered = self.gather(value, root=0)
        return self.bcast(gathered, root=0)

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Personalized exchange: rank i sends ``values[j]`` to rank j.

        Returns the list of items this rank received, ordered by source.
        """
        if values is None or len(values) != self.size:
            raise MpiError(
                f"alltoall needs exactly {self.size} values per rank"
            )
        tag = self._next_collective_tag()
        for dest in range(self.size):
            if dest != self.rank:
                self._send_obj(values[dest], dest, tag)
        received: list[Any] = [None] * self.size
        received[self.rank] = values[self.rank]
        for source in range(self.size):
            if source != self.rank:
                received[source] = self._recv_obj(source, tag)
        return received

    def scan(self, value: Any, op: ReduceOp) -> Any:
        """Inclusive prefix reduction: rank i gets op(v₀, ..., vᵢ)."""
        gathered = self.allgather(value)
        accumulated = gathered[0]
        for rank in range(1, self.rank + 1):
            accumulated = op.combine(accumulated, gathered[rank])
        return accumulated

    def sendrecv(
        self,
        data: Any,
        dest: int,
        source: int,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ) -> tuple[bytes, Status]:
        """Combined send+receive (MPI_Sendrecv): deadlock-free exchange."""
        self.send(data, dest, send_tag)
        return self.recv(source, recv_tag)

    def barrier(self) -> None:
        """Dissemination barrier: log₂(size) rounds of pairwise signals."""
        # Barrier rounds get a dedicated tag space (seq << 8 | round) so
        # rounds of one barrier can never match another collective's tag.
        self._collective_seq += 1
        base = (_COLLECTIVE_TAG_BASE << 1) + (
            (self._collective_seq & 0xFFFF) << 8
        )
        size = self.size
        distance = 1
        round_index = 0
        while distance < size:
            dest = (self.rank + distance) % size
            source = (self.rank - distance) % size
            self._send_obj(None, dest, base + round_index)
            self._recv_obj(source, base + round_index)
            distance <<= 1
            round_index += 1


def run_mpi(
    size: int,
    main: Callable[..., Any],
    *args: Any,
    timeout: float | None = 120.0,
    **kwargs: Any,
) -> list[Any]:
    """Run ``main(comm, *args, **kwargs)`` on *size* ranks; gather returns.

    The first rank exception (lowest rank wins ties) is re-raised in the
    caller after all ranks have been joined, with the world finalized so
    blocked peers wake up with a clean MpiError instead of hanging.
    """
    world = World(size)
    results: list[Any] = [None] * size
    failures: list[tuple[int, BaseException]] = []
    failure_lock = threading.Lock()

    def rank_main(rank: int) -> None:
        comm = world.comm(rank)
        try:
            results[rank] = main(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - joined and re-raised
            with failure_lock:
                failures.append((rank, exc))
            world.finalize()

    threads = [
        threading.Thread(
            target=rank_main, args=(rank,), name=f"mpi-rank-{rank}", daemon=True
        )
        for rank in range(size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
        if thread.is_alive():
            world.finalize()
            raise MpiError(
                f"rank thread {thread.name} did not finish within {timeout}s"
            )
    world.finalize()
    if failures:
        failures.sort(key=lambda pair: pair[0])
        rank, error = failures[0]
        raise MpiError(f"rank {rank} failed: {error}") from error
    return results
