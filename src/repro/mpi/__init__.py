"""MPI analog: explicit message passing, the paper's low-level baseline.

Paper §2: "The mechanisms for communication are based on explicit message
send and receive, where each process is identified by its rank in the
communication group ... MPI requires explicit packing and unpacking of
messages."  This package reproduces that programming model:

* :func:`run_mpi` — SPMD launcher: run a function on ``size`` ranks
  (thread-backed processes) sharing a :class:`World`;
* :class:`Comm` — per-rank communicator with blocking ``send``/``recv``
  (bytes in, bytes out — *no* object serialization, by design), buffered
  non-blocking ``isend``/``irecv`` returning :class:`Request` handles;
* collectives: ``bcast``, ``reduce``, ``allreduce``, ``gather``,
  ``scatter``, ``barrier`` — built on point-to-point with binomial trees;
* :class:`PackBuffer` / :class:`UnpackBuffer` — the explicit
  ``MPI_Pack``/``MPI_Unpack`` discipline the paper contrasts with object
  serialization (a non-contiguous structure "must be packed into a
  continuous memory area before being sent").

Message-ordering guarantee: messages between one (source, dest) pair are
non-overtaking, matching the MPI standard; tags and ``ANY_SOURCE`` /
``ANY_TAG`` wildcards follow MPI matching rules.
"""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Comm, Status, World, run_mpi
from repro.mpi.p2p import Request
from repro.mpi.ops import MAX, MIN, PROD, SUM
from repro.mpi.pack import (
    CHAR,
    DOUBLE,
    INT,
    LONG,
    PackBuffer,
    UnpackBuffer,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CHAR",
    "Comm",
    "DOUBLE",
    "INT",
    "LONG",
    "MAX",
    "MIN",
    "PROD",
    "PackBuffer",
    "Request",
    "SUM",
    "Status",
    "UnpackBuffer",
    "World",
    "run_mpi",
]
