"""PyParC: a Python reproduction of "ParC#: Parallel Computing with C# in
.Net" (Ferreira & Sobral, PACT 2005).

The package implements the paper's system — the SCOOPP parallel-object
runtime — and every substrate it runs on or is compared against:

================  ==========================================================
``repro.core``    SCOOPP/ParC#: ``@parallel`` classes, preprocessor, proxy
                  objects, object managers, grain-size adaptation
``repro.cluster`` nodes, factories, placement policies
``repro.remoting``.Net remoting analog (channels, well-known objects,
                  transparent proxies, async delegates)
``repro.rmi``     Java RMI analog (registry, rmic stub generator, checked
                  RemoteException discipline)
``repro.mpi``     MPI analog (ranks, send/recv, collectives, pack/unpack)
``repro.nio``     java.nio analog (ByteBuffer, selector channels)
``repro.serialization``  graph-preserving binary + SOAP formatters
``repro.perfmodel``      paper-calibrated platform cost models
``repro.benchlib``       drivers regenerating the paper's figures
``repro.apps``    the evaluation workloads (JGF ray tracer, primes)
================  ==========================================================

Quickstart::

    import repro.core as parc

    @parc.parallel
    class Worker:
        def __init__(self):
            self.seen = []
        def push(self, item):        # async: no return value
            self.seen.append(item)
        def size(self):              # sync: returns a value
            return len(self.seen)

    parc.init(nodes=4)
    try:
        worker = parc.new(Worker)
        worker.push(1); worker.push(2)
        assert worker.size() == 2
    finally:
        parc.shutdown()
"""

from repro.errors import ParcError

__version__ = "1.0.0"

__all__ = ["ParcError", "__version__"]
