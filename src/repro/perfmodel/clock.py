"""Clock abstraction: wall time for real runs, virtual time for simulation.

Everything in the library that needs a timestamp takes a :class:`Clock`, so
the same code path runs against real sockets (``WallClock``) and inside the
deterministic discrete-event simulator (``VirtualClock``).
"""

from __future__ import annotations

import abc
import threading
import time

from repro.errors import SimulationError


class Clock(abc.ABC):
    """Source of monotonically non-decreasing timestamps in seconds."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (origin is clock-specific)."""


class WallClock(Clock):
    """Real monotonic time; used by socket transports and examples."""

    def now(self) -> float:
        return time.monotonic()


class VirtualClock(Clock):
    """Manually advanced clock for deterministic simulation.

    The discrete-event engine owns advancement; components only read.
    ``advance`` is relative, ``advance_to`` absolute; both refuse to move
    backwards because a time-travelling clock means the event queue was
    popped out of order — a simulator bug worth failing loudly on.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by *delta* seconds; returns the new time."""
        if delta < 0:
            raise SimulationError(f"cannot advance clock by {delta} (< 0)")
        with self._lock:
            self._now += delta
            return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to *timestamp*; returns the new time."""
        with self._lock:
            if timestamp < self._now:
                raise SimulationError(
                    f"cannot move clock backwards "
                    f"({timestamp} < {self._now})"
                )
            self._now = timestamp
            return self._now
