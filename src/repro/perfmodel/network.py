"""Analytic network-cost curves derived from a :class:`PlatformModel`.

The classic two-parameter (latency/bandwidth) "postal" model: a message of
``n`` payload bytes costs::

    T(n) = one_way_latency + (n * wire_expansion) / wire_bandwidth

which yields the characteristic log-log bandwidth curve of the paper's
Fig. 8 — flat latency-bound region for small messages, rising through a
knee near ``latency * bandwidth`` bytes, saturating at the platform's
asymptotic bandwidth.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.perfmodel.platforms import PlatformModel


def transfer_time(model: PlatformModel, payload_bytes: float) -> float:
    """One-way time in seconds to move *payload_bytes* of application data."""
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
    wire_bytes = payload_bytes * model.wire_expansion
    return model.one_way_latency_s + wire_bytes / model.wire_bandwidth_Bps


def pingpong_round_trip(model: PlatformModel, payload_bytes: float) -> float:
    """Round-trip time of the paper's ping-pong test (send + echo)."""
    return 2.0 * transfer_time(model, payload_bytes)


def payload_bandwidth(model: PlatformModel, payload_bytes: float) -> float:
    """Observed application bandwidth in bytes/second at one message size.

    This is what the paper plots in Fig. 8: payload bytes divided by
    one-way transfer time (each direction of the ping-pong moves the
    payload once).
    """
    if payload_bytes <= 0:
        raise ValueError("bandwidth needs a positive payload size")
    return payload_bytes / transfer_time(model, payload_bytes)


def bandwidth_curve(
    model: PlatformModel, sizes: Iterable[float]
) -> list[tuple[float, float]]:
    """Return ``(payload_bytes, bandwidth_Bps)`` points for a size sweep."""
    return [(float(size), payload_bandwidth(model, size)) for size in sizes]


def half_power_point(model: PlatformModel) -> float:
    """Message size (bytes) at which half the asymptotic bandwidth is hit.

    A standard summary statistic of latency/bandwidth models: solves
    ``payload_bandwidth(n) = wire_bandwidth / (2 * wire_expansion)``.
    """
    return (
        model.one_way_latency_s
        * model.wire_bandwidth_Bps
        / model.wire_expansion
    )


def figure8_sizes(points_per_decade: int = 3) -> list[float]:
    """The paper's Fig. 8 x-axis: 1 B to 1 MB on a log scale."""
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    sizes: list[float] = []
    size = 1.0
    top = 1024.0 * 1024.0
    ratio = 10.0 ** (1.0 / points_per_decade)
    while size <= top * 1.0001:
        sizes.append(round(size, 3))
        size *= ratio
    if sizes[-1] < top:
        sizes.append(top)  # always include the paper's 1 MB endpoint
    return sizes


def dominates(
    faster: Sequence[tuple[float, float]], slower: Sequence[tuple[float, float]]
) -> bool:
    """True if curve *faster* is >= *slower* at every common x (figure shape)."""
    slower_by_x = dict(slower)
    common = [x for x, _ in faster if x in slower_by_x]
    if not common:
        return False
    return all(
        bandwidth >= slower_by_x[x]
        for x, bandwidth in faster
        if x in slower_by_x
    )
