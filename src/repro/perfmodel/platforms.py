"""Platform presets calibrated to the paper's reported constants.

Each :class:`PlatformModel` captures the handful of numbers that determine
the paper's curves:

``one_way_latency_s``
    Per-message software+wire latency for a minimal message.  §4 reports
    520 µs (Mono 1.1.7), 273 µs (Java RMI/JDK 1.4.2), 100 µs (MPI/MPICH).
    (The paper's sentence lists the three values "respectively" for Mono,
    Java RMI and MPI; see EXPERIMENTS.md for the reading.)  Java nio is
    described as "very close to" Mono's latency.

``wire_bandwidth_Bps``
    Asymptotic achievable byte rate on the wire, including per-byte
    software costs (serialization, copies).  The 100 Mbit Ethernet ceiling
    is 12.5 MB/s; MPI approaches it, remoting stacks sit below it
    (Fig. 8a), Mono 1.0.5 an order of magnitude below 1.1.7, and the Http
    channel lowest of all (Fig. 8b).

``wire_expansion``
    Bytes on the wire per payload byte for this platform's default
    formatter (protocol framing + encoding).  Binary formatters are close
    to 1; the SOAP channel base64s binary data and wraps everything in
    XML, giving ≈ 2.4 on typical int-array payloads.

``compute_scale_float`` / ``compute_scale_int``
    Sequential execution-time multiplier relative to the Sun JVM for
    floating-point-heavy code (the ray tracer: Mono ≈ 1.4, MS .Net ≈ 1.1)
    and integer-heavy code (the prime sieve: Mono ≈ 1.0) — §4.

``thread_pool_limit``
    Maximum concurrently running pool threads per node, or ``None`` for
    unbounded.  §4 attributes part of ParC#'s Fig. 9 gap to Mono's thread
    pool "limiting the number of running threads", reducing
    computation/communication overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

MB = 1024.0 * 1024.0

#: 100 Mbit Ethernet payload ceiling (the cluster interconnect of §4).
WIRE_CEILING_BPS = 12.5 * MB


@dataclass(frozen=True)
class PlatformModel:
    """Analytic cost model of one measured platform configuration."""

    name: str
    one_way_latency_s: float
    wire_bandwidth_Bps: float
    wire_expansion: float = 1.0
    compute_scale_float: float = 1.0
    compute_scale_int: float = 1.0
    thread_pool_limit: int | None = None

    def __post_init__(self) -> None:
        if self.one_way_latency_s <= 0:
            raise ValueError("one_way_latency_s must be positive")
        if self.wire_bandwidth_Bps <= 0:
            raise ValueError("wire_bandwidth_Bps must be positive")
        if self.wire_expansion < 1.0:
            raise ValueError("wire_expansion cannot compress below 1x")
        if self.thread_pool_limit is not None and self.thread_pool_limit < 1:
            raise ValueError("thread_pool_limit must be >= 1 or None")

    def with_overrides(self, **kwargs: object) -> "PlatformModel":
        """Return a copy with some fields replaced (for ablations)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: MPICH 1.2.6 + g++ 3.2.2 (the paper's MPI comparator).  Near-wire
#: bandwidth, lowest latency, native compute speed.
MPI_MPICH = PlatformModel(
    name="MPI (MPICH 1.2.6)",
    one_way_latency_s=100e-6,
    wire_bandwidth_Bps=11.2 * MB,
    wire_expansion=1.02,
    compute_scale_float=0.85,
    compute_scale_int=0.85,
)

#: Sun JDK 1.4.2 RMI.  Mid latency, good large-message bandwidth.
JAVA_RMI = PlatformModel(
    name="Java RMI (SDK 1.4.2)",
    one_way_latency_s=273e-6,
    wire_bandwidth_Bps=7.8 * MB,
    wire_expansion=1.15,
    compute_scale_float=1.0,
    compute_scale_int=1.0,
)

#: java.nio (JDK 1.4) — lower-level message passing; §4: latency "very
#: close" to Mono remoting, bandwidth near RMI's.
JAVA_NIO = PlatformModel(
    name="Java nio (SDK 1.4.2)",
    one_way_latency_s=480e-6,
    wire_bandwidth_Bps=8.6 * MB,
    wire_expansion=1.05,
    compute_scale_float=1.0,
    compute_scale_int=1.0,
)

#: Mono 1.1.7, TCP channel + binary formatter — the ParC# platform.
#: Fig. 8a: lags Java for large messages; §4: 520 µs latency, 1.4×
#: sequential ray-tracer time, capped thread pool.
MONO_117_TCP = PlatformModel(
    name="Mono 1.1.7 (Tcp)",
    one_way_latency_s=520e-6,
    wire_bandwidth_Bps=5.2 * MB,
    wire_expansion=1.12,
    compute_scale_float=1.4,
    compute_scale_int=1.0,
    thread_pool_limit=4,
)

#: Mono 1.0.5, TCP channel — Fig. 8b shows performance "radically
#: increased from release 1.0.5": an order of magnitude in bandwidth.
MONO_105_TCP = PlatformModel(
    name="Mono 1.0.5 (Tcp)",
    one_way_latency_s=1900e-6,
    wire_bandwidth_Bps=0.55 * MB,
    wire_expansion=1.12,
    compute_scale_float=1.5,
    compute_scale_int=1.05,
    thread_pool_limit=4,
)

#: Mono 1.1.7, HTTP channel + SOAP formatter — the slowest curve of
#: Fig. 8b ("the low performance of an Http channel").
MONO_117_HTTP = PlatformModel(
    name="Mono 1.1.7 (Http)",
    one_way_latency_s=3200e-6,
    wire_bandwidth_Bps=0.42 * MB,
    wire_expansion=2.4,
    compute_scale_float=1.4,
    compute_scale_int=1.0,
    thread_pool_limit=4,
)

#: Microsoft .Net on Windows — only its sequential gap is reported (§4:
#: "only 10% superior" to the JVM on the ray tracer).
MS_NET = PlatformModel(
    name="MS .Net 1.1 (Windows)",
    one_way_latency_s=430e-6,
    wire_bandwidth_Bps=6.5 * MB,
    wire_expansion=1.12,
    compute_scale_float=1.1,
    compute_scale_int=1.0,
)

#: Sun JVM baseline for sequential comparisons (scale 1.0 by definition).
SUN_JVM = PlatformModel(
    name="Sun JVM (SDK 1.4.2)",
    one_way_latency_s=273e-6,
    wire_bandwidth_Bps=7.8 * MB,
    wire_expansion=1.15,
    compute_scale_float=1.0,
    compute_scale_int=1.0,
)

PLATFORMS: tuple[PlatformModel, ...] = (
    MPI_MPICH,
    JAVA_RMI,
    JAVA_NIO,
    MONO_117_TCP,
    MONO_105_TCP,
    MONO_117_HTTP,
    MS_NET,
    SUN_JVM,
)


def platform_by_name(name: str) -> PlatformModel:
    """Look a preset up by its display name (exact match)."""
    for model in PLATFORMS:
        if model.name == name:
            return model
    known = ", ".join(repr(model.name) for model in PLATFORMS)
    raise KeyError(f"unknown platform {name!r}; known: {known}")
