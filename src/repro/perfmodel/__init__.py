"""Calibrated performance models for the platforms measured in the paper.

The paper's numbers were taken on a 2005 Linux cluster (dual Athlon MP
1800+, 100 Mbit Ethernet) running MPICH 1.2.6, Sun JDK 1.4.2 RMI, and Mono
1.0.5/1.1.7.  None of that exists here, so — per the reproduction's
substitution rule — each platform is represented by a small analytic model
(:class:`PlatformModel`) calibrated against the constants the paper itself
reports:

* one-way latencies 520 µs (Mono), 273 µs (Java RMI), 100 µs (MPI) — §4;
* a 100 Mbit wire ceiling (12.5 MB/s) that MPI approaches and remoting
  stacks stay under — Fig. 8a;
* an order-of-magnitude bandwidth gap between Mono 1.1.7 and 1.0.5, and a
  further gap to the Http/SOAP channel — Fig. 8b;
* sequential compute scale factors: Mono ≈ 1.4× JVM on the ray tracer,
  MS .Net ≈ 1.1×, Mono ≈ 1.0× on the integer sieve — §4.

The models drive the simulated transports and the discrete-event cluster so
the benchmarks regenerate the *shape* of every figure deterministically,
while the protocol code above the transport (formatters, channels,
dispatch, SCOOPP runtime) is all real.
"""

from repro.perfmodel.clock import Clock, VirtualClock, WallClock
from repro.perfmodel.platforms import (
    JAVA_NIO,
    JAVA_RMI,
    MONO_105_TCP,
    MONO_117_HTTP,
    MONO_117_TCP,
    MPI_MPICH,
    MS_NET,
    PLATFORMS,
    PlatformModel,
    platform_by_name,
)
from repro.perfmodel.network import (
    bandwidth_curve,
    payload_bandwidth,
    pingpong_round_trip,
    transfer_time,
)

__all__ = [
    "Clock",
    "JAVA_NIO",
    "JAVA_RMI",
    "MONO_105_TCP",
    "MONO_117_HTTP",
    "MONO_117_TCP",
    "MPI_MPICH",
    "MS_NET",
    "PLATFORMS",
    "PlatformModel",
    "VirtualClock",
    "WallClock",
    "bandwidth_curve",
    "payload_bandwidth",
    "pingpong_round_trip",
    "platform_by_name",
    "transfer_time",
]
