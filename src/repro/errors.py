"""Exception hierarchy for PyParC.

Every subsystem raises exceptions derived from :class:`ParcError` so callers
can catch library failures with a single ``except`` clause.  The hierarchy
mirrors the error surfaces of the systems the paper compares:

* the .Net remoting analog raises :class:`RemotingError` subtypes
  (unchecked, like C# — one of the paper's usability points in Fig. 2);
* the Java RMI analog raises :class:`RemoteException`, which stubs are
  *required* to declare (checked, like Java — the burden shown in Fig. 1);
* the MPI analog raises :class:`MpiError`;
* the SCOOPP core raises :class:`ScooppError` subtypes.
"""

from __future__ import annotations


class ParcError(Exception):
    """Base class for every error raised by this library."""


class SerializationError(ParcError):
    """An object graph could not be encoded or decoded."""


class UnknownTypeError(SerializationError):
    """A value's type is not registered with the serialization registry.

    Mirrors the ``[Serializable]`` requirement of the .Net binary formatter
    (paper Fig. 7): only explicitly registered classes cross the wire.
    """


class WireFormatError(SerializationError):
    """The byte stream on the wire is malformed or truncated."""


class ChannelError(ParcError):
    """A transport channel failed (connect, frame, send, receive)."""


class ChannelClosedError(ChannelError):
    """Operation attempted on a channel that has been shut down."""


class CircuitOpenError(ChannelError):
    """A call was rejected because the target's circuit breaker is open.

    Raised *before* any network activity: a peer that keeps failing is
    quarantined so callers fail in microseconds instead of burning a
    connect timeout per call (see :mod:`repro.channels.breaker`).
    """


class OverloadError(ChannelError):
    """A call was shed because the target (or the send path) is saturated.

    Raised either server-side — a bounded IO mailbox refused admission, or
    a deadline-aware shed dropped a request already past its budget — or
    client-side, when no send credit arrived within the stall budget.  A
    sibling of :class:`CircuitOpenError` on purpose: both are *typed*
    fail-fast signals that must not be retried (retries amplify overload)
    and both count as failures for the circuit breaker, so sustained
    shedding trips the circuit and quarantines the hot peer.
    """


class FaultInjectedError(ChannelError):
    """A failure injected on purpose by the chaos layer.

    Distinguishable from organic transport failures so tests can assert
    which faults fired, while still retrying/classifying like any other
    :class:`ChannelError`.
    """


class AddressError(ChannelError):
    """A remoting URI or endpoint address could not be parsed or resolved."""


class ShmSetupError(ChannelError):
    """A shared-memory handshake or segment attach failed.

    Raised strictly *before* any request bytes were sent, so the
    same-node router may retry the call over the wire without risking
    double execution (see :mod:`repro.shm.router`).
    """


class RemotingError(ParcError):
    """Base error of the .Net remoting analog (unchecked, like C#)."""


class UnknownObjectError(RemotingError):
    """A call referenced an object URI not published on the server."""


class ActivationError(RemotingError):
    """A well-known object or factory could not be activated."""


class RemoteInvocationError(RemotingError):
    """The remote method itself raised; carries the remote traceback text."""

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


class RemoteException(ParcError):
    """Checked remote failure of the Java RMI analog.

    Java RMI forces every remote method to declare ``throws RemoteException``
    (paper Fig. 1, step 1/4).  The analog enforces the same discipline: a
    remote interface method must declare it raises :class:`RemoteException`
    (see :func:`repro.rmi.interfaces.remote_method`), and every stub call
    site must be prepared for it.
    """

    def __init__(self, message: str, cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.cause = cause


class NotBoundError(RemoteException):
    """Lookup of a name with no binding in the RMI registry."""


class AlreadyBoundError(RemoteException):
    """``bind`` of a name that is already bound (use ``rebind``)."""


class ExportError(RemoteException):
    """An object could not be exported as a remote object."""


class MpiError(ParcError):
    """Base error of the MPI analog."""


class RankError(MpiError):
    """A rank argument is outside the communicator's size."""


class TruncationError(MpiError):
    """A received message is larger than the posted receive buffer."""


class PackError(MpiError):
    """Explicit pack/unpack buffer misuse (overflow, type mismatch)."""


class NioError(ParcError):
    """Base error of the java.nio analog."""


class BufferStateError(NioError):
    """A buffer operation violated position/limit/capacity invariants."""


class ScooppError(ParcError):
    """Base error of the SCOOPP/ParC# core runtime."""


class NotRunningError(ScooppError):
    """The RTS was used before ``init`` or after ``shutdown``."""


class PlacementError(ScooppError):
    """The object manager could not place a new implementation object."""


class PreprocessError(ScooppError):
    """The source-level preprocessor rejected an input module."""


class GrainError(ScooppError):
    """Grain-size adaptation misuse (e.g. flushing a released proxy)."""


class BatchCallError(ScooppError):
    """One or more calls inside a ``call_many`` aggregate failed.

    Carries the full per-call picture so callers can keep the successes:
    ``results`` holds one entry per call (``None`` at failed slots) and
    ``failures`` maps call index → the re-raised exception for that slot.
    """

    def __init__(self, message: str, results: list, failures: dict):
        super().__init__(message)
        self.results = results
        self.failures = failures


class MigrationError(ScooppError):
    """A live grain migration could not be carried out.

    Raised by the node scheduler when the named grain cannot be found,
    the target refuses the adoption, or the state transfer fails; the
    grain keeps serving on its original node (the move aborts cleanly
    before anything has executed elsewhere).
    """


class NodeLostError(ScooppError):
    """The node hosting a grain died and the grain is not restartable.

    Raised by proxy-object calls once the failure detector (or a failed
    call) establishes the hosting node is gone.  Grains declared
    ``@parallel(restartable=True)`` are respawned on a surviving node
    instead and never surface this error.
    """


class SimulationError(ParcError):
    """The discrete-event simulator reached an inconsistent state."""
