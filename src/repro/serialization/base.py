"""Formatter interface shared by the binary and SOAP encoders."""

from __future__ import annotations

import abc
from typing import Any

from repro.serialization.registry import SerializationRegistry, default_registry


class Formatter(abc.ABC):
    """Encodes/decodes an object graph to/from ``bytes``.

    A formatter is the pluggable serialization half of a channel, exactly as
    in .Net remoting where the TCP channel defaults to the binary formatter
    and the HTTP channel to the SOAP formatter (the two curves of the
    paper's Fig. 8b).  Formatters are stateless between calls and safe to
    share across threads.
    """

    #: MIME-style label carried in channel headers.
    content_type: str = "application/octet-stream"

    def __init__(self, registry: SerializationRegistry | None = None) -> None:
        self.registry = registry if registry is not None else default_registry

    @abc.abstractmethod
    def dumps(self, obj: Any) -> bytes:
        """Encode *obj* (an arbitrary supported object graph) to bytes."""

    @abc.abstractmethod
    def loads(self, data: bytes) -> Any:
        """Decode bytes produced by :meth:`dumps` back into an object graph."""
