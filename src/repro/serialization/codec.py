"""Compiled per-class codecs and the zero-copy binary fast path.

The generic :class:`~repro.serialization.binary.BinaryFormatter` walks a
per-value type ladder into a fresh ``BytesIO`` for every encode and copies
every slice on decode.  That is fine for arbitrary object graphs, but the
wire hot path (remoting call/return messages, aggregated ``processN``
batches) is dominated by a handful of *fixed-shape* registered classes
whose field layout is known ahead of time.  This module compiles those
classes once:

* :func:`compile_codec` inspects a registered dataclass and builds a
  :class:`CompiledCodec` — the object-tag prefix, wire name and per-field
  name prefixes are precomputed constant byte strings, and each field gets
  a specialized encoder/decoder picked from its annotation (zigzag-varint
  ints, ``struct``-packed floats, raw utf-8 strings), so encoding an
  instance is a handful of ``bytearray`` appends with **no per-value type
  ladder** and no state-dict allocation.
* :class:`FastBinaryFormatter` emits and accepts the *same* tagged wire
  format as :class:`BinaryFormatter` — byte-for-byte — but encodes into a
  caller-supplied ``bytearray`` (:meth:`FastBinaryFormatter.dumps_into`)
  and decodes from a ``memoryview`` with no intermediate ``BytesIO`` or
  slice copies.  Old and new payloads interoperate on the wire in both
  directions (fuzz-tested in ``tests/unit/test_codec.py``).
* :class:`CodecRegistry` keys codecs by class (encode) and wire name
  (decode); unregistered classes fall back transparently to the generic
  object path, so the fast formatter never rejects what the generic one
  accepts.

Identity semantics are preserved: the reference memo is maintained in the
same pre-order as the generic encoder (a compiled object still occupies a
memo slot), so shared sub-objects and back-references decode identically
whichever side compiled the class.  A class whose instances are expected
to form reference-heavy graphs can be registered with ``graph=True`` to
skip compilation and keep the fully general memoized object path.

The module also hosts the *method-signature* half of the fast path:
:func:`method_column_plan` derives per-argument column kinds from a
``@parallel`` method's annotations, and :func:`pack_columns` transposes a
homogeneous aggregation batch into columns (``array('d')`` blobs for
all-float columns) so a ``processN`` flush encodes the argument schema
once instead of one tuple+dict wrapper per call.
"""

from __future__ import annotations

import array
import dataclasses
import inspect
import struct
import threading
import typing
from operator import attrgetter
from typing import Any, Callable, Sequence

from repro.errors import SerializationError, WireFormatError
from repro.serialization.binary import (
    _ARRAY_TYPECODES,
    _Placeholder,
    BinaryFormatter,
    append_uvarint,
    uvarint_from,
    zigzag,
)
from repro.serialization.registry import (
    SerializationRegistry,
    default_registry,
)

try:  # numpy is an optional but supported payload type (int[] workloads)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None

# Integer tag values (the decode ladder indexes memoryviews, which yield
# ints); byte values below must stay in lockstep with binary.py's tags.
_O_NONE = ord("N")
_O_TRUE = ord("T")
_O_FALSE = ord("F")
_O_INT = ord("i")
_O_BIGINT = ord("l")
_O_FLOAT = ord("d")
_O_COMPLEX = ord("c")
_O_STR = ord("s")
_O_BYTES = ord("b")
_O_BYTEARRAY = ord("y")
_O_LIST = ord("L")
_O_TUPLE = ord("U")
_O_DICT = ord("D")
_O_SET = ord("S")
_O_FROZENSET = ord("z")
_O_ARRAY = ord("A")
_O_NDARRAY = ord("M")
_O_OBJECT = ord("O")
_O_REF = ord("R")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_DOUBLE = struct.Struct(">d")
_TAGGED_DOUBLE = struct.Struct(">cd")  # tag byte + IEEE-754 double, one pack
_TAGGED_COMPLEX = struct.Struct(">cdd")

_OBJECT_GETSTATE = getattr(object, "__getstate__", None)


def _uvarint_bytes(value: int) -> bytes:
    out = bytearray()
    append_uvarint(out, value)
    return bytes(out)


# -- specialized field encoders/decoders -------------------------------------
#
# One pair per annotation kind.  Encoders verify the runtime type before
# taking the specialized path — an ``int``-annotated field holding a float
# (Python does not enforce annotations) falls back to the generic ladder,
# so compiled output is always exactly what the generic encoder would emit.


def _enc_any(fmt: "FastBinaryFormatter", out: bytearray, value: Any,
             memo: dict) -> None:
    fmt._encode_fast(out, value, memo)


def _enc_int(fmt: "FastBinaryFormatter", out: bytearray, value: Any,
             memo: dict) -> None:
    if type(value) is int and _I64_MIN <= value <= _I64_MAX:
        out.append(_O_INT)
        value = (value << 1) ^ (value >> 63)
        while value > 0x7F:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)
    else:
        fmt._encode_fast(out, value, memo)


def _enc_float(fmt: "FastBinaryFormatter", out: bytearray, value: Any,
               memo: dict) -> None:
    if type(value) is float:
        out += _TAGGED_DOUBLE.pack(b"d", value)
    else:
        fmt._encode_fast(out, value, memo)


def _enc_bool(fmt: "FastBinaryFormatter", out: bytearray, value: Any,
              memo: dict) -> None:
    if value is True:
        out.append(_O_TRUE)
    elif value is False:
        out.append(_O_FALSE)
    else:
        fmt._encode_fast(out, value, memo)


def _enc_str(fmt: "FastBinaryFormatter", out: bytearray, value: Any,
             memo: dict) -> None:
    if type(value) is str:
        encoded = value.encode("utf-8")
        out.append(_O_STR)
        append_uvarint(out, len(encoded))
        out += encoded
    else:
        fmt._encode_fast(out, value, memo)


def _enc_bytes(fmt: "FastBinaryFormatter", out: bytearray, value: Any,
               memo: dict) -> None:
    if type(value) is bytes:
        out.append(_O_BYTES)
        append_uvarint(out, len(value))
        out += value
    else:
        fmt._encode_fast(out, value, memo)


def _dec_any(fmt: "FastBinaryFormatter", buf: Any, pos: int,
             refs: list) -> tuple[Any, int]:
    return fmt._decode_fast(buf, pos, refs)


def _dec_int(fmt: "FastBinaryFormatter", buf: Any, pos: int,
             refs: list) -> tuple[Any, int]:
    if buf[pos] == _O_INT:
        value, pos = uvarint_from(buf, pos + 1)
        return (value >> 1) ^ -(value & 1), pos
    return fmt._decode_fast(buf, pos, refs)


def _dec_float(fmt: "FastBinaryFormatter", buf: Any, pos: int,
               refs: list) -> tuple[Any, int]:
    if buf[pos] == _O_FLOAT:
        return _DOUBLE.unpack_from(buf, pos + 1)[0], pos + 9
    return fmt._decode_fast(buf, pos, refs)


def _dec_bool(fmt: "FastBinaryFormatter", buf: Any, pos: int,
              refs: list) -> tuple[Any, int]:
    tag = buf[pos]
    if tag == _O_TRUE:
        return True, pos + 1
    if tag == _O_FALSE:
        return False, pos + 1
    return fmt._decode_fast(buf, pos, refs)


def _dec_str(fmt: "FastBinaryFormatter", buf: Any, pos: int,
             refs: list) -> tuple[Any, int]:
    if buf[pos] == _O_STR:
        size, pos = uvarint_from(buf, pos + 1)
        end = pos + size
        if end > len(buf):
            raise WireFormatError("truncated string payload")
        return str(buf[pos:end], "utf-8"), end
    return fmt._decode_fast(buf, pos, refs)


def _dec_bytes(fmt: "FastBinaryFormatter", buf: Any, pos: int,
               refs: list) -> tuple[Any, int]:
    if buf[pos] == _O_BYTES:
        size, pos = uvarint_from(buf, pos + 1)
        end = pos + size
        if end > len(buf):
            raise WireFormatError("truncated bytes payload")
        return bytes(buf[pos:end]), end
    return fmt._decode_fast(buf, pos, refs)


_FIELD_CODECS: dict[type, tuple[Callable, Callable]] = {
    int: (_enc_int, _dec_int),
    float: (_enc_float, _dec_float),
    bool: (_enc_bool, _dec_bool),
    str: (_enc_str, _dec_str),
    bytes: (_enc_bytes, _dec_bytes),
}


def _annotation_kind(annotation: Any) -> tuple[Callable, Callable]:
    """Specialized (encoder, decoder) for a field annotation, or generic."""
    return _FIELD_CODECS.get(annotation, (_enc_any, _dec_any))


def _resolved_hints(obj: Any) -> dict[str, Any]:
    """Best-effort annotation resolution (PEP 563 strings and all)."""
    try:
        return typing.get_type_hints(obj)
    except Exception:  # noqa: BLE001 - unresolvable hints mean "no hints"
        return {}


@dataclasses.dataclass(frozen=True)
class _FieldCodec:
    """One compiled field: constant name prefix + specialized enc/dec."""

    name: str
    prefix: bytes  # uvarint(len(name)) + utf-8 name, as the wire carries it
    enc: Callable
    dec: Callable


class CompiledCodec:
    """Specialized encoder/decoder for one registered dataclass.

    The compiled encode path appends the class's precomputed object-tag
    prefix (tag + wire name + field count) and then, per field, a constant
    name prefix plus the field's specialized value encoding — matching the
    generic formatter byte-for-byte.  Decode walks the same layout; when a
    payload does not match the compiled shape (an old peer sent a renamed
    or missing field) it degrades to the generic state-dict path, keeping
    the registry's schema-evolution rules (`__parc_upgrade__`, defaults).
    """

    __slots__ = (
        "cls", "wire_name", "name_bytes", "prefix", "fields", "_getter",
        "_direct",
    )

    def __init__(self, cls: type, wire_name: str,
                 fields: Sequence[_FieldCodec]) -> None:
        self.cls = cls
        self.wire_name = wire_name
        self.name_bytes = wire_name.encode("utf-8")
        self.fields = tuple(fields)
        prefix = bytearray()
        prefix.append(_O_OBJECT)
        append_uvarint(prefix, len(self.name_bytes))
        prefix += self.name_bytes
        append_uvarint(prefix, len(self.fields))
        self.prefix = bytes(prefix)
        names = [f.name for f in self.fields]
        if len(names) == 1:
            single = attrgetter(names[0])
            self._getter = lambda obj: (single(obj),)
        elif names:
            self._getter = attrgetter(*names)
        else:
            self._getter = lambda obj: ()
        # Direct field installation is only safe without restore hooks.
        self._direct = getattr(cls, "__parc_upgrade__", None) is None

    def encode(self, out: bytearray, obj: Any, fmt: "FastBinaryFormatter",
               memo: dict) -> None:
        out += self.prefix
        for field, value in zip(self.fields, self._getter(obj)):
            out += field.prefix
            field.enc(fmt, out, value, memo)

    def decode(self, fmt: "FastBinaryFormatter", buf: Any, pos: int,
               refs: list) -> tuple[Any, int]:
        cls = self.cls
        obj = cls.__new__(cls)
        refs.append(obj)  # same pre-order slot as the generic decoder
        count, pos = uvarint_from(buf, pos)
        values: list[Any] = []
        matched = 0
        if count == len(self.fields):
            for field in self.fields:
                end = pos + len(field.prefix)
                if buf[pos:end] == field.prefix:
                    value, pos = field.dec(fmt, buf, end, refs)
                    values.append(value)
                    matched += 1
                else:
                    break
            if matched == count and self._direct:
                set_attr = object.__setattr__
                for field, value in zip(self.fields, values):
                    set_attr(obj, field.name, value)
                return obj, pos
        # Shape mismatch (schema drift) or a restore hook: fall back to the
        # registry's state-dict path for the remaining fields.
        state = {
            self.fields[i].name: values[i] for i in range(matched)
        }
        for _ in range(count - matched):
            size, pos = uvarint_from(buf, pos)
            end = pos + size
            if end > len(buf):
                raise WireFormatError("truncated field name")
            name = str(buf[pos:end], "utf-8")
            state[name], pos = fmt._decode_fast(buf, end, refs)
        fmt.registry.restore_state(obj, state)
        return obj, pos


def compile_codec(
    cls: type,
    registry: SerializationRegistry | None = None,
) -> CompiledCodec:
    """Compile a specialized wire codec for registered dataclass *cls*.

    Requirements (violations raise :class:`SerializationError`):

    * *cls* is registered in *registry* (its wire name pins the prefix);
    * *cls* is a dataclass — the field list is the wire schema, and the
      generic encoder serializes dataclasses in field order, so the two
      paths agree byte-for-byte;
    * *cls* has no custom ``__getstate__``/``__setstate__`` — those hooks
      define a dynamic wire shape the compiler cannot precompute (such
      classes simply stay on the generic path).
    """
    registry = registry if registry is not None else default_registry
    wire_name = registry.wire_name_of(cls)
    if not dataclasses.is_dataclass(cls):
        raise SerializationError(
            f"cannot compile a codec for {cls.__qualname__}: codec "
            f"compilation requires a dataclass (the field list is the "
            f"wire schema)"
        )
    getstate = getattr(cls, "__getstate__", None)
    if getstate is not None and getstate is not _OBJECT_GETSTATE:
        raise SerializationError(
            f"cannot compile a codec for {cls.__qualname__}: custom "
            f"__getstate__ defines a dynamic wire shape"
        )
    if getattr(cls, "__setstate__", None) is not None:
        raise SerializationError(
            f"cannot compile a codec for {cls.__qualname__}: custom "
            f"__setstate__ defines a dynamic wire shape"
        )
    hints = _resolved_hints(cls)
    fields = []
    for field in dataclasses.fields(cls):
        enc, dec = _annotation_kind(hints.get(field.name, None))
        name_bytes = field.name.encode("utf-8")
        fields.append(
            _FieldCodec(
                name=field.name,
                prefix=_uvarint_bytes(len(name_bytes)) + name_bytes,
                enc=enc,
                dec=dec,
            )
        )
    return CompiledCodec(cls, wire_name, fields)


class CodecRegistry:
    """Compiled codecs keyed by class (encode) and wire name (decode).

    The mutable dicts are shared by reference with every
    :class:`FastBinaryFormatter` constructed against this registry, so
    codecs registered after a formatter exists are picked up immediately.
    Registration is idempotent per class.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.by_class: dict[type, CompiledCodec] = {}
        self.by_name: dict[bytes, CompiledCodec] = {}
        self._graph: set[type] = set()

    def register(
        self,
        cls: type,
        *,
        graph: bool = False,
        registry: SerializationRegistry | None = None,
    ) -> CompiledCodec | None:
        """Compile and install a codec for *cls*; returns it.

        ``graph=True`` marks the class graph-shaped instead: no codec is
        compiled and instances keep the fully general memoized object
        path (returns ``None``).  Only classes that are *not* claimed by
        a :class:`~repro.serialization.registry.Surrogate` may be
        compiled — surrogates rewrite instances before encoding, which a
        per-class codec would bypass.
        """
        if graph:
            with self._lock:
                codec = self.by_class.pop(cls, None)
                if codec is not None:
                    self.by_name.pop(codec.name_bytes, None)
                self._graph.add(cls)
            return None
        codec = compile_codec(cls, registry)
        with self._lock:
            self._graph.discard(cls)
            self.by_class[cls] = codec
            self.by_name[codec.name_bytes] = codec
        return codec

    def unregister(self, cls: type) -> None:
        with self._lock:
            self._graph.discard(cls)
            codec = self.by_class.pop(cls, None)
            if codec is not None:
                self.by_name.pop(codec.name_bytes, None)

    def codec_for(self, cls: type) -> CompiledCodec | None:
        return self.by_class.get(cls)

    def is_graph(self, cls: type) -> bool:
        return cls in self._graph

    def __len__(self) -> int:
        return len(self.by_class)


#: Process-wide codec registry used by :func:`register_codec` and, by
#: default, by every :class:`FastBinaryFormatter`.
default_codec_registry = CodecRegistry()


def register_codec(
    cls: type,
    *,
    graph: bool = False,
    registry: SerializationRegistry | None = None,
) -> CompiledCodec | None:
    """Compile a wire codec for *cls* into the default codec registry.

    The class must already be ``@serializable``.  See
    :meth:`CodecRegistry.register`.
    """
    return default_codec_registry.register(cls, graph=graph, registry=registry)


class FastBinaryFormatter(BinaryFormatter):
    """Zero-copy drop-in for :class:`BinaryFormatter` (same wire format).

    * encode appends to a ``bytearray`` (reusable via :meth:`dumps_into`)
      instead of a fresh ``BytesIO``;
    * decode walks a ``memoryview`` with explicit positions — no stream
      object, no slice copies for scalars;
    * instances of codec-compiled classes skip the per-value type ladder
      entirely.

    ``content_type`` is inherited unchanged: both formatters speak
    ``application/x-parc-binary`` and interoperate on the wire.
    """

    def __init__(
        self,
        registry: SerializationRegistry | None = None,
        codecs: CodecRegistry | None = None,
    ) -> None:
        super().__init__(registry)
        self.codecs = codecs if codecs is not None else default_codec_registry
        # Bound dict references: one attribute load on the hot path.
        self._codec_by_class = self.codecs.by_class
        self._codec_by_name = self.codecs.by_name

    # -- encoding -----------------------------------------------------------

    def dumps(self, obj: Any) -> bytes:
        out = bytearray()
        self._encode_fast(out, obj, {})
        return bytes(out)

    def dumps_into(self, out: bytearray, obj: Any) -> None:
        """Append the encoding of *obj* to *out* (no intermediate bytes)."""
        self._encode_fast(out, obj, {})

    def _encode_fast(self, out: bytearray, obj: Any, memo: dict) -> None:
        if obj is None:
            out.append(_O_NONE)
            return
        if obj is True:
            out.append(_O_TRUE)
            return
        if obj is False:
            out.append(_O_FALSE)
            return
        kind = type(obj)
        if kind is int:
            if _I64_MIN <= obj <= _I64_MAX:
                out.append(_O_INT)
                obj = (obj << 1) ^ (obj >> 63)
                while obj > 0x7F:
                    out.append((obj & 0x7F) | 0x80)
                    obj >>= 7
                out.append(obj)
            else:
                blob = obj.to_bytes(
                    (obj.bit_length() + 8) // 8, "big", signed=True
                )
                out.append(_O_BIGINT)
                append_uvarint(out, len(blob))
                out += blob
            return
        if kind is float:
            out += _TAGGED_DOUBLE.pack(b"d", obj)
            return
        if kind is complex:
            out += _TAGGED_COMPLEX.pack(b"c", obj.real, obj.imag)
            return
        if kind is str:
            encoded = obj.encode("utf-8")
            out.append(_O_STR)
            append_uvarint(out, len(encoded))
            out += encoded
            return
        if kind is bytes:
            out.append(_O_BYTES)
            append_uvarint(out, len(obj))
            out += obj
            return
        # Everything below is identity-tracked, in the same pre-order as
        # the generic encoder so back-reference indices line up on both
        # sides whichever formatter produced the payload.
        ref = memo.get(id(obj))
        if ref is not None:
            out.append(_O_REF)
            append_uvarint(out, ref)
            return
        memo[id(obj)] = len(memo)
        if kind is tuple:
            out.append(_O_TUPLE)
            append_uvarint(out, len(obj))
            for item in obj:
                self._encode_fast(out, item, memo)
            return
        if kind is list:
            out.append(_O_LIST)
            append_uvarint(out, len(obj))
            for item in obj:
                self._encode_fast(out, item, memo)
            return
        if kind is dict:
            out.append(_O_DICT)
            append_uvarint(out, len(obj))
            for key, value in obj.items():
                self._encode_fast(out, key, memo)
                self._encode_fast(out, value, memo)
            return
        codec = self._codec_by_class.get(kind)
        if codec is not None:
            codec.encode(out, obj, self, memo)
            return
        if kind is bytearray:
            out.append(_O_BYTEARRAY)
            append_uvarint(out, len(obj))
            out += obj
            return
        if kind is set or kind is frozenset:
            out.append(_O_SET if kind is set else _O_FROZENSET)
            append_uvarint(out, len(obj))
            for item in obj:
                self._encode_fast(out, item, memo)
            return
        if kind is array.array:
            if obj.typecode not in _ARRAY_TYPECODES:
                raise SerializationError(
                    f"unsupported array typecode {obj.typecode!r}"
                )
            out.append(_O_ARRAY)
            out += obj.typecode.encode("ascii")
            append_uvarint(out, len(obj) * obj.itemsize)
            out += obj.tobytes()
            return
        if _np is not None and kind is _np.ndarray:
            self._encode_ndarray_fast(out, obj)
            return
        self._encode_object_fast(out, obj, memo)

    def _encode_ndarray_fast(self, out: bytearray, arr: Any) -> None:
        if arr.dtype.hasobject:
            raise SerializationError("object-dtype ndarrays are not portable")
        contiguous = _np.ascontiguousarray(arr)
        dtype = contiguous.dtype.str.encode("ascii")
        out.append(_O_NDARRAY)
        append_uvarint(out, len(dtype))
        out += dtype
        append_uvarint(out, contiguous.ndim)
        for dim in contiguous.shape:
            append_uvarint(out, dim)
        append_uvarint(out, contiguous.nbytes)
        out += contiguous.data.cast("B")  # one memcpy, no tobytes() copy

    def _encode_object_fast(self, out: bytearray, obj: Any,
                            memo: dict) -> None:
        surrogate = self.registry.surrogate_for(obj)
        if surrogate is not None:
            wire_name = surrogate.wire_name
            state = surrogate.encode(obj)
        else:
            wire_name = self.registry.wire_name_of(type(obj))
            state = self.registry.state_of(obj)
        name_bytes = wire_name.encode("utf-8")
        out.append(_O_OBJECT)
        append_uvarint(out, len(name_bytes))
        out += name_bytes
        append_uvarint(out, len(state))
        for field, value in state.items():
            encoded = field.encode("utf-8")
            append_uvarint(out, len(encoded))
            out += encoded
            self._encode_fast(out, value, memo)

    # -- decoding -----------------------------------------------------------

    def loads(self, data: Any) -> Any:
        """Decode *data* (``bytes``, ``bytearray`` or ``memoryview``)."""
        buf = data if isinstance(data, memoryview) else memoryview(data)
        try:
            value, pos = self._decode_fast(buf, 0, [])
        except SerializationError:
            raise
        except (ValueError, TypeError, OverflowError, UnicodeDecodeError,
                IndexError, struct.error) as exc:
            # Corrupted payloads must surface as wire errors, never as
            # raw codec/numpy exceptions (fuzz-tested contract).
            raise WireFormatError(f"malformed payload: {exc}") from exc
        if pos != len(buf):
            raise WireFormatError("trailing bytes after value")
        return value

    def _decode_fast(self, buf: Any, pos: int, refs: list) -> tuple[Any, int]:
        if pos >= len(buf):
            raise WireFormatError("truncated value (missing tag)")
        tag = buf[pos]
        pos += 1
        if tag == _O_NONE:
            return None, pos
        if tag == _O_TRUE:
            return True, pos
        if tag == _O_FALSE:
            return False, pos
        if tag == _O_INT:
            value, pos = uvarint_from(buf, pos)
            return (value >> 1) ^ -(value & 1), pos
        if tag == _O_FLOAT:
            if pos + 8 > len(buf):
                raise WireFormatError("truncated float payload")
            return _DOUBLE.unpack_from(buf, pos)[0], pos + 8
        if tag == _O_STR:
            size, pos = uvarint_from(buf, pos)
            end = pos + size
            if end > len(buf):
                raise WireFormatError("truncated string payload")
            return str(buf[pos:end], "utf-8"), end
        if tag == _O_BYTES:
            size, pos = uvarint_from(buf, pos)
            end = pos + size
            if end > len(buf):
                raise WireFormatError("truncated bytes payload")
            return bytes(buf[pos:end]), end
        if tag == _O_REF:
            index, pos = uvarint_from(buf, pos)
            if index >= len(refs):
                raise WireFormatError(f"back-reference {index} out of range")
            value = refs[index]
            if isinstance(value, _Placeholder):
                raise WireFormatError(
                    "cycle through an immutable container cannot be decoded"
                )
            return value, pos
        if tag == _O_TUPLE:
            count, pos = uvarint_from(buf, pos)
            slot = len(refs)
            refs.append(_Placeholder())
            items = []
            for _ in range(count):
                value, pos = self._decode_fast(buf, pos, refs)
                items.append(value)
            value = tuple(items)
            refs[slot] = value
            return value, pos
        if tag == _O_LIST:
            count, pos = uvarint_from(buf, pos)
            items = []
            refs.append(items)
            for _ in range(count):
                value, pos = self._decode_fast(buf, pos, refs)
                items.append(value)
            return items, pos
        if tag == _O_DICT:
            count, pos = uvarint_from(buf, pos)
            mapping: dict[Any, Any] = {}
            refs.append(mapping)
            for _ in range(count):
                key, pos = self._decode_fast(buf, pos, refs)
                mapping[key], pos = self._decode_fast(buf, pos, refs)
            return mapping, pos
        if tag == _O_OBJECT:
            return self._decode_object_fast(buf, pos, refs)
        if tag == _O_BIGINT:
            size, pos = uvarint_from(buf, pos)
            end = pos + size
            if end > len(buf):
                raise WireFormatError("truncated bigint payload")
            return int.from_bytes(buf[pos:end], "big", signed=True), end
        if tag == _O_COMPLEX:
            if pos + 16 > len(buf):
                raise WireFormatError("truncated complex payload")
            real = _DOUBLE.unpack_from(buf, pos)[0]
            imag = _DOUBLE.unpack_from(buf, pos + 8)[0]
            return complex(real, imag), pos + 16
        if tag == _O_BYTEARRAY:
            size, pos = uvarint_from(buf, pos)
            end = pos + size
            if end > len(buf):
                raise WireFormatError("truncated bytearray payload")
            value = bytearray(buf[pos:end])
            refs.append(value)
            return value, end
        if tag == _O_SET:
            count, pos = uvarint_from(buf, pos)
            result: set[Any] = set()
            refs.append(result)
            for _ in range(count):
                value, pos = self._decode_fast(buf, pos, refs)
                result.add(value)
            return result, pos
        if tag == _O_FROZENSET:
            count, pos = uvarint_from(buf, pos)
            slot = len(refs)
            refs.append(_Placeholder())
            items = []
            for _ in range(count):
                value, pos = self._decode_fast(buf, pos, refs)
                items.append(value)
            value = frozenset(items)
            refs[slot] = value
            return value, pos
        if tag == _O_ARRAY:
            if pos >= len(buf):
                raise WireFormatError("truncated array typecode")
            typecode = chr(buf[pos])
            if typecode not in _ARRAY_TYPECODES:
                raise WireFormatError(f"bad array typecode {typecode!r}")
            size, pos = uvarint_from(buf, pos + 1)
            end = pos + size
            if end > len(buf):
                raise WireFormatError("truncated array payload")
            value = array.array(typecode)
            value.frombytes(buf[pos:end])
            refs.append(value)
            return value, end
        if tag == _O_NDARRAY:
            return self._decode_ndarray_fast(buf, pos, refs)
        raise WireFormatError(f"unknown tag byte {bytes((tag,))!r}")

    def _decode_ndarray_fast(self, buf: Any, pos: int,
                             refs: list) -> tuple[Any, int]:
        if _np is None:  # pragma: no cover - numpy is installed in CI
            raise WireFormatError("ndarray on the wire but numpy unavailable")
        size, pos = uvarint_from(buf, pos)
        end = pos + size
        if end > len(buf):
            raise WireFormatError("truncated ndarray dtype")
        dtype = str(buf[pos:end], "ascii")
        ndim, pos = uvarint_from(buf, end)
        shape = []
        for _ in range(ndim):
            dim, pos = uvarint_from(buf, pos)
            shape.append(dim)
        size, pos = uvarint_from(buf, pos)
        end = pos + size
        if end > len(buf):
            raise WireFormatError("truncated ndarray payload")
        value = _np.frombuffer(buf[pos:end], dtype=_np.dtype(dtype))
        value = value.reshape(tuple(shape)).copy()  # decouple from the view
        refs.append(value)
        return value, end

    def _decode_object_fast(self, buf: Any, pos: int,
                            refs: list) -> tuple[Any, int]:
        size, pos = uvarint_from(buf, pos)
        end = pos + size
        if end > len(buf):
            raise WireFormatError("truncated object wire name")
        name_raw = bytes(buf[pos:end])
        pos = end
        codec = self._codec_by_name.get(name_raw)
        if codec is not None:
            return codec.decode(self, buf, pos, refs)
        wire_name = name_raw.decode("utf-8")
        surrogate = self.registry.surrogate_by_name(wire_name)
        if surrogate is not None:
            # The final value only exists after decode(), so back-references
            # into a surrogate-encoded object are unsupported (placeholder
            # makes that a clear error rather than silent corruption).
            slot = len(refs)
            refs.append(_Placeholder())
            count, pos = uvarint_from(buf, pos)
            state: dict[str, Any] = {}
            for _ in range(count):
                size, pos = uvarint_from(buf, pos)
                end = pos + size
                if end > len(buf):
                    raise WireFormatError("truncated field name")
                field = str(buf[pos:end], "utf-8")
                state[field], pos = self._decode_fast(buf, end, refs)
            value = surrogate.decode(state)
            refs[slot] = value
            return value, pos
        obj = self.registry.new_instance(wire_name)
        refs.append(obj)
        count, pos = uvarint_from(buf, pos)
        state = {}
        for _ in range(count):
            size, pos = uvarint_from(buf, pos)
            end = pos + size
            if end > len(buf):
                raise WireFormatError("truncated field name")
            field = str(buf[pos:end], "utf-8")
            state[field], pos = self._decode_fast(buf, end, refs)
        self.registry.restore_state(obj, state)
        return obj, pos


# -- columnar batch packing (the processN aggregate fast path) ---------------


def method_column_plan(func: Any) -> tuple[str | None, ...] | None:
    """Column kinds for a ``@parallel`` method's positional parameters.

    Compiled once per (class, method) by the proxy-object layer; each
    entry is ``"float"``/``"int"``/``None`` per parameter after ``self``.
    Returns ``None`` when the method has no usable signature, which makes
    :func:`pack_columns` probe column types dynamically instead.
    """
    if func is None:
        return None
    try:
        signature = inspect.signature(func)
    except (TypeError, ValueError):
        return None
    hints = _resolved_hints(func)
    plan: list[str | None] = []
    parameters = list(signature.parameters.values())
    if parameters and parameters[0].name in ("self", "cls"):
        parameters = parameters[1:]
    for parameter in parameters:
        if parameter.kind not in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            return None  # *args/keyword-only: shape not statically known
        annotation = hints.get(parameter.name)
        if annotation is float:
            plan.append("float")
        elif annotation is int:
            plan.append("int")
        else:
            plan.append(None)
    return tuple(plan)


def pack_columns(
    batch: Sequence[tuple[tuple, dict]],
    plan: tuple[str | None, ...] | None = None,
) -> tuple | None:
    """Transpose a homogeneous aggregation batch into argument columns.

    *batch* is the proxy object's buffered ``[(args, kwargs), ...]``.
    Returns one column per positional argument — a ``list``, or an
    ``array('d')`` blob when every value in the column is a float (8
    bytes/value on the wire in one memcpy, versus a 9-byte tagged double
    each) — or ``None`` when the batch is heterogeneous (any kwargs, or
    mixed arity) and must travel as a classic ``[(args, kwargs)]`` batch.

    *plan* is an optional :func:`method_column_plan`; a column whose
    annotation already rules out floats skips the type scan.
    """
    if not batch:
        return None
    arity = len(batch[0][0])
    for args, kwargs in batch:
        if kwargs or len(args) != arity:
            return None
    columns = []
    for index in range(arity):
        column = [args[index] for args, _kwargs in batch]
        kind = plan[index] if plan is not None and index < len(plan) else None
        if kind != "int" and all(type(value) is float for value in column):
            columns.append(array.array("d", column))
        else:
            columns.append(column)
    return tuple(columns)


def unpack_columns(count: int, columns: Sequence) -> list[tuple[tuple, dict]]:
    """Rebuild the ``[(args, kwargs), ...]`` batch from columnar form."""
    if not columns:
        return [((), {}) for _ in range(count)]
    batch = [(args, {}) for args in zip(*columns)]
    if len(batch) != count:
        raise SerializationError(
            f"columnar batch length mismatch: header says {count} calls, "
            f"columns carry {len(batch)}"
        )
    return batch


def pack_result_column(results: Sequence) -> Any:
    """Pack an ``invoke_batch`` result list for the ``returnN`` reply.

    Mirrors the request-side column trick: when every result is a float
    the list collapses into an ``array('d')`` (one typecode byte + one
    memcpy on the wire instead of a tagged double per value).  Any other
    shape — mixed types, ``None`` error slots — travels as the list
    itself.
    """
    if results and all(type(value) is float for value in results):
        return array.array("d", results)
    return list(results)


def unpack_result_column(count: int, results: Any) -> list:
    """Inverse of :func:`pack_result_column`; validates the count."""
    if results is None:
        values = [None] * count
    elif isinstance(results, array.array):
        values = results.tolist()
    else:
        values = list(results)
    if len(values) != count:
        raise SerializationError(
            f"returnN batch length mismatch: header says {count} results, "
            f"column carries {len(values)}"
        )
    return values
