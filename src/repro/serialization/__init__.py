"""Object-graph serialization: the formatter layer of the remoting stack.

The paper's platform relies on .Net object serialization: "the serialisation
mechanism can automatically copy the object to a continuous stream that can
be sent to another virtual machine, which can reconstruct a copy of the
original object structure on the remote machine" (§1).  This package is that
mechanism, built from scratch:

* :class:`BinaryFormatter` — compact tagged binary encoding with full
  object-graph support (shared references and cycles), the analog of the
  .Net binary formatter used by the TCP channel.
* :class:`SoapFormatter` — verbose, self-describing textual encoding, the
  analog of the SOAP formatter used by the HTTP channel (the slow curve of
  the paper's Fig. 8b).
* a class **registry** (:func:`serializable`) so that only explicitly
  registered classes cross the wire — the ``[Serializable]`` attribute of
  the paper's Fig. 7.  Nothing is ever deserialized into arbitrary code.

Both formatters share the registry and round-trip the same value domain;
property-based tests assert they agree.
"""

from repro.serialization.registry import (
    SerializationRegistry,
    Surrogate,
    default_registry,
    serializable,
)
from repro.serialization.binary import BinaryFormatter
from repro.serialization.codec import (
    CodecRegistry,
    CompiledCodec,
    FastBinaryFormatter,
    compile_codec,
    default_codec_registry,
    register_codec,
)
from repro.serialization.soap import SoapFormatter
from repro.serialization.base import Formatter

__all__ = [
    "BinaryFormatter",
    "CodecRegistry",
    "CompiledCodec",
    "FastBinaryFormatter",
    "Formatter",
    "SerializationRegistry",
    "SoapFormatter",
    "Surrogate",
    "compile_codec",
    "default_codec_registry",
    "default_registry",
    "register_codec",
    "serializable",
]
