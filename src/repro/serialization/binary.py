"""Tagged binary object-graph formatter (the .Net binary formatter analog).

Wire format
-----------

A value is one tag byte followed by a tag-specific payload.  Unsigned
lengths and counts are LEB128 varints.  Signed integers are zigzag varints,
falling back to a length-prefixed big-endian two's-complement blob for
magnitudes that do not fit 64 bits (Python ints are unbounded).

Object-graph identity is preserved: every container or registered object is
assigned a reference index in pre-order as it is first encoded; later
occurrences of the *same* object (``is``-identity) encode as a back
reference.  This is what lets the formatter "reconstruct a copy of the
original object structure" (paper §1) including shared sub-objects and
cycles — the capability the paper contrasts with MPI's flat, explicitly
packed buffers.

Cycles through immutable containers (tuple/frozenset) cannot be
reconstructed without placeholder mutation, so they are rejected with
:class:`~repro.errors.SerializationError`; cycles through lists, dicts,
sets and registered objects round-trip.
"""

from __future__ import annotations

import array
import io
import struct
from typing import Any

from repro.errors import SerializationError, WireFormatError
from repro.serialization.base import Formatter

try:  # numpy is an optional but supported payload type (int[] workloads)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None

# Tag bytes.  One printable byte per supported shape keeps hexdumps readable.
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"  # zigzag varint (fits in 64 bits signed)
_T_BIGINT = b"l"  # length-prefixed two's-complement big-endian
_T_FLOAT = b"d"  # IEEE-754 double, big-endian
_T_COMPLEX = b"c"  # two doubles
_T_STR = b"s"  # varint length + UTF-8
_T_BYTES = b"b"  # varint length + raw
_T_BYTEARRAY = b"y"
_T_LIST = b"L"  # varint count + items
_T_TUPLE = b"U"
_T_DICT = b"D"  # varint count + key/value pairs
_T_SET = b"S"
_T_FROZENSET = b"z"
_T_ARRAY = b"A"  # array.array: typecode byte + varint byte-length + raw
_T_NDARRAY = b"M"  # numpy: dtype str + ndim + shape + raw (C order)
_T_OBJECT = b"O"  # registered class: wire name + state dict
_T_REF = b"R"  # varint back-reference index

_DOUBLE = struct.Struct(">d")

# array.array typecodes whose element size is platform-stable enough for a
# wire format (we normalise to their byte representation + typecode).
_ARRAY_TYPECODES = frozenset("bBhHiIlLqQfd")


def write_uvarint(out: io.BytesIO, value: int) -> None:
    """Append *value* (non-negative) as a LEB128 varint."""
    if value < 0:
        raise SerializationError(f"uvarint cannot encode negative {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def read_uvarint(buf: io.BytesIO) -> int:
    """Read a LEB128 varint; raises WireFormatError on truncation."""
    shift = 0
    result = 0
    while True:
        raw = buf.read(1)
        if not raw:
            raise WireFormatError("truncated varint")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 630:  # ints are unbounded but varints here are lengths
            raise WireFormatError("varint too long")


def append_uvarint(out: bytearray, value: int) -> None:
    """Append *value* (non-negative) as a LEB128 varint to a bytearray.

    The allocation-free sibling of :func:`write_uvarint`, used by the
    zero-copy fast path (:mod:`repro.serialization.codec`).  Both emit
    identical bytes.
    """
    if value < 0:
        raise SerializationError(f"uvarint cannot encode negative {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def uvarint_from(buf: Any, pos: int) -> tuple[int, int]:
    """Read a LEB128 varint from a buffer at *pos*; returns (value, pos').

    *buf* may be ``bytes``, ``bytearray`` or a ``memoryview`` — indexing
    yields ints either way, so the fast decode path never materialises an
    intermediate ``BytesIO``.
    """
    shift = 0
    result = 0
    size = len(buf)
    while True:
        if pos >= size:
            raise WireFormatError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 630:  # ints are unbounded but varints here are lengths
            raise WireFormatError("varint too long")


def zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else (value << 1) ^ -1


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


class BinaryFormatter(Formatter):
    """Compact graph-preserving binary formatter.

    This is the formatter behind :class:`repro.channels.tcp.TcpChannel`,
    matching the paper's measured configuration ("Mono (Tcp)" in Fig. 8).
    """

    content_type = "application/x-parc-binary"

    def dumps(self, obj: Any) -> bytes:
        out = io.BytesIO()
        self._encode(out, obj, memo={})
        return out.getvalue()

    def loads(self, data: bytes) -> Any:
        buf = io.BytesIO(data)
        try:
            value = self._decode(buf, refs=[])
        except SerializationError:
            raise
        except (ValueError, TypeError, OverflowError, UnicodeDecodeError) as exc:
            # Corrupted payloads must surface as wire errors, never as
            # raw codec/numpy exceptions (fuzz-tested contract).
            raise WireFormatError(f"malformed payload: {exc}") from exc
        trailing = buf.read(1)
        if trailing:
            raise WireFormatError("trailing bytes after value")
        return value

    # -- encoding -----------------------------------------------------------

    def _encode(self, out: io.BytesIO, obj: Any, memo: dict[int, int]) -> None:
        if obj is None:
            out.write(_T_NONE)
            return
        if obj is True:
            out.write(_T_TRUE)
            return
        if obj is False:
            out.write(_T_FALSE)
            return
        kind = type(obj)
        if kind is int:
            if -(1 << 63) <= obj < (1 << 63):
                out.write(_T_INT)
                write_uvarint(out, zigzag(obj))
            else:
                blob = obj.to_bytes(
                    (obj.bit_length() + 8) // 8, "big", signed=True
                )
                out.write(_T_BIGINT)
                write_uvarint(out, len(blob))
                out.write(blob)
            return
        if kind is float:
            out.write(_T_FLOAT)
            out.write(_DOUBLE.pack(obj))
            return
        if kind is complex:
            out.write(_T_COMPLEX)
            out.write(_DOUBLE.pack(obj.real))
            out.write(_DOUBLE.pack(obj.imag))
            return
        if kind is str:
            encoded = obj.encode("utf-8")
            out.write(_T_STR)
            write_uvarint(out, len(encoded))
            out.write(encoded)
            return
        if kind is bytes:
            out.write(_T_BYTES)
            write_uvarint(out, len(obj))
            out.write(obj)
            return
        # Everything below is identity-tracked (may be shared or cyclic).
        ref = memo.get(id(obj))
        if ref is not None:
            out.write(_T_REF)
            write_uvarint(out, ref)
            return
        memo[id(obj)] = len(memo)
        if kind is bytearray:
            out.write(_T_BYTEARRAY)
            write_uvarint(out, len(obj))
            out.write(bytes(obj))
            return
        if kind is list:
            out.write(_T_LIST)
            write_uvarint(out, len(obj))
            for item in obj:
                self._encode(out, item, memo)
            return
        if kind is tuple:
            out.write(_T_TUPLE)
            write_uvarint(out, len(obj))
            for item in obj:
                self._encode(out, item, memo)
            return
        if kind is dict:
            out.write(_T_DICT)
            write_uvarint(out, len(obj))
            for key, value in obj.items():
                self._encode(out, key, memo)
                self._encode(out, value, memo)
            return
        if kind is set or kind is frozenset:
            out.write(_T_SET if kind is set else _T_FROZENSET)
            write_uvarint(out, len(obj))
            for item in obj:
                self._encode(out, item, memo)
            return
        if kind is array.array:
            if obj.typecode not in _ARRAY_TYPECODES:
                raise SerializationError(
                    f"unsupported array typecode {obj.typecode!r}"
                )
            raw = obj.tobytes()
            out.write(_T_ARRAY)
            out.write(obj.typecode.encode("ascii"))
            write_uvarint(out, len(raw))
            out.write(raw)
            return
        if _np is not None and kind is _np.ndarray:
            self._encode_ndarray(out, obj)
            return
        self._encode_object(out, obj, memo)

    def _encode_ndarray(self, out: io.BytesIO, arr: "Any") -> None:
        if arr.dtype.hasobject:
            raise SerializationError("object-dtype ndarrays are not portable")
        contiguous = _np.ascontiguousarray(arr)
        dtype = contiguous.dtype.str.encode("ascii")
        out.write(_T_NDARRAY)
        write_uvarint(out, len(dtype))
        out.write(dtype)
        write_uvarint(out, contiguous.ndim)
        for dim in contiguous.shape:
            write_uvarint(out, dim)
        raw = contiguous.tobytes()
        write_uvarint(out, len(raw))
        out.write(raw)

    def _encode_object(
        self, out: io.BytesIO, obj: Any, memo: dict[int, int]
    ) -> None:
        surrogate = self.registry.surrogate_for(obj)
        if surrogate is not None:
            wire_name = surrogate.wire_name
            state = surrogate.encode(obj)
        else:
            wire_name = self.registry.wire_name_of(type(obj))
            state = self.registry.state_of(obj)
        name_bytes = wire_name.encode("utf-8")
        out.write(_T_OBJECT)
        write_uvarint(out, len(name_bytes))
        out.write(name_bytes)
        write_uvarint(out, len(state))
        for field, value in state.items():
            encoded = field.encode("utf-8")
            write_uvarint(out, len(encoded))
            out.write(encoded)
            self._encode(out, value, memo)

    # -- decoding -----------------------------------------------------------

    def _decode(self, buf: io.BytesIO, refs: list[Any]) -> Any:
        tag = buf.read(1)
        if not tag:
            raise WireFormatError("truncated value (missing tag)")
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return unzigzag(read_uvarint(buf))
        if tag == _T_BIGINT:
            blob = self._read_exact(buf, read_uvarint(buf))
            return int.from_bytes(blob, "big", signed=True)
        if tag == _T_FLOAT:
            return _DOUBLE.unpack(self._read_exact(buf, 8))[0]
        if tag == _T_COMPLEX:
            real = _DOUBLE.unpack(self._read_exact(buf, 8))[0]
            imag = _DOUBLE.unpack(self._read_exact(buf, 8))[0]
            return complex(real, imag)
        if tag == _T_STR:
            return self._read_exact(buf, read_uvarint(buf)).decode("utf-8")
        if tag == _T_BYTES:
            return self._read_exact(buf, read_uvarint(buf))
        if tag == _T_REF:
            index = read_uvarint(buf)
            if index >= len(refs):
                raise WireFormatError(f"back-reference {index} out of range")
            value = refs[index]
            if isinstance(value, _Placeholder):
                raise WireFormatError(
                    "cycle through an immutable container cannot be decoded"
                )
            return value
        if tag == _T_BYTEARRAY:
            value = bytearray(self._read_exact(buf, read_uvarint(buf)))
            refs.append(value)
            return value
        if tag == _T_LIST:
            count = read_uvarint(buf)
            items: list[Any] = []
            refs.append(items)
            for _ in range(count):
                items.append(self._decode(buf, refs))
            return items
        if tag == _T_TUPLE:
            count = read_uvarint(buf)
            slot = len(refs)
            refs.append(_Placeholder())
            value = tuple(self._decode(buf, refs) for _ in range(count))
            refs[slot] = value
            return value
        if tag == _T_DICT:
            count = read_uvarint(buf)
            mapping: dict[Any, Any] = {}
            refs.append(mapping)
            for _ in range(count):
                key = self._decode(buf, refs)
                mapping[key] = self._decode(buf, refs)
            return mapping
        if tag == _T_SET:
            count = read_uvarint(buf)
            result: set[Any] = set()
            refs.append(result)
            for _ in range(count):
                result.add(self._decode(buf, refs))
            return result
        if tag == _T_FROZENSET:
            count = read_uvarint(buf)
            slot = len(refs)
            refs.append(_Placeholder())
            value = frozenset(self._decode(buf, refs) for _ in range(count))
            refs[slot] = value
            return value
        if tag == _T_ARRAY:
            typecode = self._read_exact(buf, 1).decode("ascii")
            if typecode not in _ARRAY_TYPECODES:
                raise WireFormatError(f"bad array typecode {typecode!r}")
            raw = self._read_exact(buf, read_uvarint(buf))
            value = array.array(typecode)
            value.frombytes(raw)
            refs.append(value)
            return value
        if tag == _T_NDARRAY:
            return self._decode_ndarray(buf, refs)
        if tag == _T_OBJECT:
            return self._decode_object(buf, refs)
        raise WireFormatError(f"unknown tag byte {tag!r}")

    def _decode_ndarray(self, buf: io.BytesIO, refs: list[Any]) -> Any:
        if _np is None:  # pragma: no cover - numpy is installed in CI
            raise WireFormatError("ndarray on the wire but numpy unavailable")
        dtype = self._read_exact(buf, read_uvarint(buf)).decode("ascii")
        ndim = read_uvarint(buf)
        shape = tuple(read_uvarint(buf) for _ in range(ndim))
        raw = self._read_exact(buf, read_uvarint(buf))
        value = _np.frombuffer(raw, dtype=_np.dtype(dtype)).reshape(shape)
        value = value.copy()  # frombuffer returns a read-only view
        refs.append(value)
        return value

    def _decode_object(self, buf: io.BytesIO, refs: list[Any]) -> Any:
        wire_name = self._read_exact(buf, read_uvarint(buf)).decode("utf-8")
        surrogate = self.registry.surrogate_by_name(wire_name)
        if surrogate is not None:
            # The final value only exists after decode(), so back-references
            # into a surrogate-encoded object are unsupported (placeholder
            # makes that a clear error rather than silent corruption).
            slot = len(refs)
            refs.append(_Placeholder())
            count = read_uvarint(buf)
            state: dict[str, Any] = {}
            for _ in range(count):
                field = self._read_exact(buf, read_uvarint(buf)).decode("utf-8")
                state[field] = self._decode(buf, refs)
            value = surrogate.decode(state)
            refs[slot] = value
            return value
        obj = self.registry.new_instance(wire_name)
        refs.append(obj)
        count = read_uvarint(buf)
        state = {}
        for _ in range(count):
            field = self._read_exact(buf, read_uvarint(buf)).decode("utf-8")
            state[field] = self._decode(buf, refs)
        self.registry.restore_state(obj, state)
        return obj

    @staticmethod
    def _read_exact(buf: io.BytesIO, size: int) -> bytes:
        data = buf.read(size)
        if len(data) != size:
            raise WireFormatError(
                f"truncated payload: wanted {size} bytes, got {len(data)}"
            )
        return data


class _Placeholder:
    """Sentinel occupying a ref slot while an immutable container decodes."""

    __slots__ = ()
