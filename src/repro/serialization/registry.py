"""Class registry for serializable user types.

The .Net formatter only serializes classes marked ``[Serializable]`` (paper
Fig. 7 marks the aggregated-parameters struct that way).  The analog here is
an explicit registry: a class is registered under a stable wire name, and
the formatters encode instances as ``(wire name, field dict)``.  Decoding
looks the wire name up and rebuilds the instance *without running user
constructors* (``__new__`` + field assignment), which mirrors how real
formatters bypass constructors and keeps deserialization free of arbitrary
code execution.

Classes may customize their wire representation with two optional hooks,
the analog of ``ISerializable``:

* ``__getstate__(self) -> dict`` — produce the field dict;
* ``__setstate__(self, state: dict) -> None`` — restore from it.
"""

from __future__ import annotations

import abc
import dataclasses
import threading
from typing import Any, Callable, Iterator, TypeVar

from repro.errors import SerializationError, UnknownTypeError

T = TypeVar("T", bound=type)


class Surrogate(abc.ABC):
    """Pluggable wire representation for a family of types.

    The analog of .Net's serialization surrogates, and the hook that makes
    remoting work: when a ``MarshalByRefObject`` appears anywhere in an
    object graph, a surrogate replaces it on the wire with an ``ObjRef``
    and the decoder materializes a transparent proxy in its place (see
    :mod:`repro.remoting.objref`).  Surrogates are consulted *before* the
    plain registered-class path, in registration order.
    """

    #: Wire name the surrogate's encoded form travels under.
    wire_name: str

    @abc.abstractmethod
    def applies_to(self, obj: Any) -> bool:
        """True if this surrogate should encode *obj* (isinstance-style)."""

    @abc.abstractmethod
    def encode(self, obj: Any) -> dict[str, Any]:
        """Produce the wire field dict for *obj*."""

    @abc.abstractmethod
    def decode(self, state: dict[str, Any]) -> Any:
        """Rebuild a value (not necessarily of the original type)."""


class SerializationRegistry:
    """Thread-safe bidirectional map between classes and wire names.

    A registry instance is the unit of trust: a formatter constructed with a
    registry will encode/decode exactly the classes registered in it.  The
    module-level :data:`default_registry` is what ``@serializable`` uses and
    what formatters default to.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_name: dict[str, type] = {}
        self._by_class: dict[type, str] = {}
        self._surrogates: list[Surrogate] = []
        self._surrogates_by_name: dict[str, Surrogate] = {}

    def register(self, cls: type, wire_name: str | None = None) -> type:
        """Register *cls* under *wire_name* (default: qualified class name).

        Registration is idempotent for the same (class, name) pair; mapping
        the same name to a different class raises
        :class:`~repro.errors.SerializationError` — silently rebinding a
        wire name would let one endpoint decode another's payloads into an
        unexpected type.
        """
        name = wire_name if wire_name is not None else _default_wire_name(cls)
        with self._lock:
            existing = self._by_name.get(name)
            if existing is not None and existing is not cls:
                raise SerializationError(
                    f"wire name {name!r} is already registered "
                    f"to {existing.__qualname__}"
                )
            self._by_name[name] = cls
            self._by_class[cls] = name
        return cls

    def wire_name_of(self, cls: type) -> str:
        """Return the wire name of a registered class.

        Raises :class:`~repro.errors.UnknownTypeError` for unregistered
        classes — the error a user sees when they forget ``@serializable``.
        """
        try:
            return self._by_class[cls]
        except KeyError:
            raise UnknownTypeError(
                f"{cls.__qualname__} is not registered for serialization; "
                f"decorate it with @serializable"
            ) from None

    def class_of(self, wire_name: str) -> type:
        """Return the class registered under *wire_name*."""
        try:
            return self._by_name[wire_name]
        except KeyError:
            raise UnknownTypeError(
                f"no class registered under wire name {wire_name!r}"
            ) from None

    def is_registered(self, cls: type) -> bool:
        return cls in self._by_class

    def __contains__(self, cls: type) -> bool:
        return self.is_registered(cls)

    def __iter__(self) -> Iterator[tuple[str, type]]:
        with self._lock:
            return iter(list(self._by_name.items()))

    def __len__(self) -> int:
        return len(self._by_name)

    # -- surrogates ----------------------------------------------------------

    def register_surrogate(self, surrogate: Surrogate) -> Surrogate:
        """Install *surrogate*; its wire name must be unique (idempotent
        for the same instance)."""
        with self._lock:
            existing = self._surrogates_by_name.get(surrogate.wire_name)
            if existing is surrogate:
                return surrogate
            if existing is not None:
                raise SerializationError(
                    f"a surrogate for wire name {surrogate.wire_name!r} "
                    f"is already registered"
                )
            if surrogate.wire_name in self._by_name:
                raise SerializationError(
                    f"wire name {surrogate.wire_name!r} is taken by a "
                    f"registered class"
                )
            self._surrogates.append(surrogate)
            self._surrogates_by_name[surrogate.wire_name] = surrogate
        return surrogate

    def surrogate_for(self, obj: Any) -> Surrogate | None:
        """First registered surrogate that applies to *obj*, if any."""
        for surrogate in self._surrogates:
            if surrogate.applies_to(obj):
                return surrogate
        return None

    def surrogate_by_name(self, wire_name: str) -> Surrogate | None:
        return self._surrogates_by_name.get(wire_name)

    # -- state extraction ---------------------------------------------------

    def state_of(self, obj: Any) -> dict[str, Any]:
        """Extract the wire field dict of a registered instance."""
        getstate = getattr(obj, "__getstate__", None)
        if callable(getstate):
            state = getstate()
            if state is None:
                # object.__getstate__ returns None for empty instances
                state = {}
            if isinstance(state, tuple) and len(state) == 2:
                # object.__getstate__ (3.11+) returns (dict, slots) for
                # classes with __slots__; merge the two namespaces.
                dict_state, slots_state = state
                merged = dict(dict_state or {})
                merged.update(slots_state or {})
                state = merged
            if not isinstance(state, dict):
                raise SerializationError(
                    f"{type(obj).__qualname__}.__getstate__ must return a "
                    f"dict, got {type(state).__qualname__}"
                )
            return state
        if dataclasses.is_dataclass(obj):
            # Shallow field extraction: nested values are encoded by the
            # formatter's own recursion, so dataclasses.asdict (deep copy)
            # would both waste work and break shared references.
            return {
                f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
            }
        try:
            return dict(vars(obj))
        except TypeError:
            raise SerializationError(
                f"{type(obj).__qualname__} has no __dict__ and no "
                f"__getstate__; cannot extract wire state"
            ) from None

    def new_instance(self, wire_name: str) -> Any:
        """Allocate an empty instance of the class behind *wire_name*.

        The constructor is deliberately not called: the wire state fully
        determines the object, and running ``__init__`` on attacker-supplied
        field values would be an execution vector.
        """
        cls = self.class_of(wire_name)
        return cls.__new__(cls)

    def restore_state(self, obj: Any, state: dict[str, Any]) -> None:
        """Install a decoded field dict on a freshly allocated instance.

        Schema evolution is supported in three ways, checked in order:

        1. an explicit ``__setstate__`` owns everything;
        2. a ``__parc_upgrade__(state) -> state`` classmethod may migrate
           old wire states (rename fields, recompute values) before
           installation;
        3. fields *missing* from the wire state are filled from dataclass
           defaults and from a ``_parc_field_defaults`` class dict, so
           old peers can talk to new code; fields the class cannot hold
           (``__slots__`` without the name) are skipped, so new peers can
           talk to old code.
        """
        setstate = getattr(obj, "__setstate__", None)
        if callable(setstate):
            setstate(state)
            return
        upgrade = getattr(type(obj), "__parc_upgrade__", None)
        if callable(upgrade):
            state = upgrade(state)
            if not isinstance(state, dict):
                raise SerializationError(
                    f"{type(obj).__qualname__}.__parc_upgrade__ must "
                    f"return a dict"
                )
        for field_name, default in self._field_defaults(type(obj)).items():
            if field_name not in state:
                state[field_name] = default()
        for key, value in state.items():
            try:
                object.__setattr__(obj, key, value)
            except AttributeError:
                # __slots__ class without this field: a newer peer sent a
                # field we do not know; forward compatibility drops it.
                continue

    @staticmethod
    def _field_defaults(cls: type) -> dict[str, Callable[[], Any]]:
        """Zero-argument factories for every defaultable field of *cls*."""
        defaults: dict[str, Callable[[], Any]] = {}
        if dataclasses.is_dataclass(cls):
            for field in dataclasses.fields(cls):
                if field.default is not dataclasses.MISSING:
                    value = field.default
                    defaults[field.name] = lambda value=value: value
                elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                    defaults[field.name] = field.default_factory  # type: ignore[assignment]
        explicit = getattr(cls, "_parc_field_defaults", None)
        if isinstance(explicit, dict):
            for name, value in explicit.items():
                if callable(value):
                    defaults[name] = value
                else:
                    defaults[name] = lambda value=value: value
        return defaults


def _default_wire_name(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


#: The process-wide registry used by ``@serializable`` and, by default, by
#: every formatter.
default_registry = SerializationRegistry()


def serializable(
    cls: T | None = None, *, name: str | None = None
) -> T | Callable[[T], T]:
    """Class decorator marking a type as allowed on the wire.

    The analog of C#'s ``[Serializable]`` (paper Fig. 7)::

        @serializable
        @dataclass
        class ParamsProcess:
            num: list[int]

    An explicit wire name decouples the protocol from the Python module
    layout::

        @serializable(name="parc.PrimeBatch")
        class PrimeBatch: ...
    """

    def decorate(klass: T) -> T:
        default_registry.register(klass, name)
        return klass

    if cls is None:
        return decorate
    return decorate(cls)
