"""SOAP-like textual formatter (the .Net SOAP/HTTP formatter analog).

The paper's Fig. 8b shows the Mono **Http channel** (which carries SOAP
envelopes) far below the Tcp/binary channel at every message size.  That gap
is a property of the encoding itself — a self-describing, escaped, base64-
heavy text format is several times larger and slower to produce than the
tagged binary format.  This module reproduces that encoding honestly: it is
a real, parseable XML-subset codec, not a stub, and the byte-size ratio
between :class:`SoapFormatter` and
:class:`~repro.serialization.binary.BinaryFormatter` output is what drives
the Http curve in the FIG8b benchmark.

Grammar (strict subset of XML, hand-parsed)::

    document := '<soap:Envelope><soap:Body>' value '</soap:Body></soap:Envelope>'
    value    := '<v' attrs '/>' | '<v' attrs '>' body '</v>'
    field    := '<f n="..."">' value '</f>'

The same object-graph reference semantics as the binary formatter apply
(shared refs and cycles via ``<v t="ref" id="n"/>``).
"""

from __future__ import annotations

import array
import base64
import math
from typing import Any

from repro.errors import SerializationError, WireFormatError
from repro.serialization.base import Formatter

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None

_PROLOG = '<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body>'
_EPILOG = "</soap:Body></soap:Envelope>"

# Characters emitted verbatim inside text content / attribute values.
_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    " .,:;!?_-+*/=()[]{}@#$%^|~'`\n\t"
)

_ARRAY_TYPECODES = frozenset("bBhHiIlLqQfd")


def escape_text(text: str) -> str:
    """Escape arbitrary text for inclusion in an element or attribute.

    Anything outside a conservative safe set becomes a numeric character
    reference, so every valid Python string round-trips (including control
    characters XML 1.0 proper would forbid).
    """
    parts: list[str] = []
    for char in text:
        if char in _SAFE:
            parts.append(char)
        elif char == "&":
            parts.append("&amp;")
        elif char == "<":
            parts.append("&lt;")
        elif char == ">":
            parts.append("&gt;")
        elif char == '"':
            parts.append("&quot;")
        else:
            parts.append(f"&#x{ord(char):x};")
    return "".join(parts)


def unescape_text(text: str) -> str:
    """Inverse of :func:`escape_text`."""
    if "&" not in text:
        return text
    parts: list[str] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char != "&":
            parts.append(char)
            index += 1
            continue
        end = text.find(";", index)
        if end < 0:
            raise WireFormatError("unterminated character reference")
        entity = text[index + 1 : end]
        if entity == "amp":
            parts.append("&")
        elif entity == "lt":
            parts.append("<")
        elif entity == "gt":
            parts.append(">")
        elif entity == "quot":
            parts.append('"')
        elif entity.startswith("#x"):
            try:
                parts.append(chr(int(entity[2:], 16)))
            except ValueError as exc:
                raise WireFormatError(f"bad character reference &{entity};") from exc
        else:
            raise WireFormatError(f"unknown entity &{entity};")
        index = end + 1
    return "".join(parts)


def _format_float(value: float) -> str:
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return repr(value)


def _parse_float(text: str) -> float:
    return float(text)


class SoapFormatter(Formatter):
    """Verbose self-describing text formatter behind the HTTP channel."""

    content_type = "text/xml; charset=utf-8"

    def dumps(self, obj: Any) -> bytes:
        parts: list[str] = [_PROLOG]
        self._encode(parts, obj, memo={})
        parts.append(_EPILOG)
        return "".join(parts).encode("utf-8")

    def loads(self, data: bytes) -> Any:
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError("SOAP payload is not valid UTF-8") from exc
        if not text.startswith(_PROLOG) or not text.endswith(_EPILOG):
            raise WireFormatError("missing SOAP envelope")
        parser = _Parser(text, len(_PROLOG), len(text) - len(_EPILOG), self)
        try:
            value = parser.parse_value()
            parser.expect_end()
        except SerializationError:
            raise
        except (ValueError, TypeError, OverflowError, KeyError) as exc:
            # Same fuzz-tested contract as the binary formatter.
            raise WireFormatError(f"malformed payload: {exc}") from exc
        return value

    # -- encoding -----------------------------------------------------------

    def _encode(self, parts: list[str], obj: Any, memo: dict[int, int]) -> None:
        if obj is None:
            parts.append('<v t="none"/>')
            return
        if obj is True or obj is False:
            parts.append(f'<v t="bool">{"true" if obj else "false"}</v>')
            return
        kind = type(obj)
        if kind is int:
            parts.append(f'<v t="int">{obj}</v>')
            return
        if kind is float:
            parts.append(f'<v t="float">{_format_float(obj)}</v>')
            return
        if kind is complex:
            parts.append(
                f'<v t="complex">{_format_float(obj.real)} '
                f"{_format_float(obj.imag)}</v>"
            )
            return
        if kind is str:
            parts.append(f'<v t="str">{escape_text(obj)}</v>')
            return
        if kind is bytes:
            encoded = base64.b64encode(obj).decode("ascii")
            parts.append(f'<v t="bytes">{encoded}</v>')
            return
        ref = memo.get(id(obj))
        if ref is not None:
            parts.append(f'<v t="ref" id="{ref}"/>')
            return
        memo[id(obj)] = len(memo)
        if kind is bytearray:
            encoded = base64.b64encode(bytes(obj)).decode("ascii")
            parts.append(f'<v t="bytearray">{encoded}</v>')
            return
        if kind in (list, tuple, set, frozenset):
            label = {
                list: "list",
                tuple: "tuple",
                set: "set",
                frozenset: "frozenset",
            }[kind]
            parts.append(f'<v t="{label}" n="{len(obj)}">')
            for item in obj:
                self._encode(parts, item, memo)
            parts.append("</v>")
            return
        if kind is dict:
            parts.append(f'<v t="dict" n="{len(obj)}">')
            for key, value in obj.items():
                self._encode(parts, key, memo)
                self._encode(parts, value, memo)
            parts.append("</v>")
            return
        if kind is array.array:
            if obj.typecode not in _ARRAY_TYPECODES:
                raise SerializationError(
                    f"unsupported array typecode {obj.typecode!r}"
                )
            encoded = base64.b64encode(obj.tobytes()).decode("ascii")
            parts.append(f'<v t="array" c="{obj.typecode}">{encoded}</v>')
            return
        if _np is not None and kind is _np.ndarray:
            if obj.dtype.hasobject:
                raise SerializationError("object-dtype ndarrays are not portable")
            contiguous = _np.ascontiguousarray(obj)
            shape = " ".join(str(dim) for dim in contiguous.shape)
            encoded = base64.b64encode(contiguous.tobytes()).decode("ascii")
            parts.append(
                f'<v t="ndarray" dtype="{escape_text(contiguous.dtype.str)}" '
                f'shape="{shape}">{encoded}</v>'
            )
            return
        self._encode_object(parts, obj, memo)

    def _encode_object(
        self, parts: list[str], obj: Any, memo: dict[int, int]
    ) -> None:
        surrogate = self.registry.surrogate_for(obj)
        if surrogate is not None:
            wire_name = surrogate.wire_name
            state = surrogate.encode(obj)
        else:
            wire_name = self.registry.wire_name_of(type(obj))
            state = self.registry.state_of(obj)
        parts.append(f'<v t="obj" c="{escape_text(wire_name)}" n="{len(state)}">')
        for field, value in state.items():
            parts.append(f'<f n="{escape_text(field)}">')
            self._encode(parts, value, memo)
            parts.append("</f>")
        parts.append("</v>")


class _Parser:
    """Hand-written recursive-descent parser for the SOAP subset."""

    def __init__(self, text: str, start: int, end: int, formatter: SoapFormatter):
        self.text = text
        self.pos = start
        self.end = end
        self.formatter = formatter
        self.refs: list[Any] = []

    # -- lexical helpers ----------------------------------------------------

    def _error(self, message: str) -> WireFormatError:
        return WireFormatError(f"{message} at offset {self.pos}")

    def _literal(self, token: str) -> None:
        if not self.text.startswith(token, self.pos):
            raise self._error(f"expected {token!r}")
        self.pos += len(token)

    def _open_tag(self, name: str) -> tuple[dict[str, str], bool]:
        """Consume ``<name attr="v"...>`` or ``<name .../>``.

        Returns (attributes, self_closing).
        """
        self._literal(f"<{name}")
        attrs: dict[str, str] = {}
        while True:
            if self.pos >= self.end:
                raise self._error("unterminated tag")
            char = self.text[self.pos]
            if char == " ":
                self.pos += 1
                continue
            if self.text.startswith("/>", self.pos):
                self.pos += 2
                return attrs, True
            if char == ">":
                self.pos += 1
                return attrs, False
            eq = self.text.find('="', self.pos)
            if eq < 0:
                raise self._error("malformed attribute")
            key = self.text[self.pos : eq]
            close = self.text.find('"', eq + 2)
            if close < 0:
                raise self._error("unterminated attribute value")
            attrs[key] = unescape_text(self.text[eq + 2 : close])
            self.pos = close + 1

    def _text_until(self, closer: str) -> str:
        index = self.text.find(closer, self.pos)
        if index < 0 or index > self.end:
            raise self._error(f"missing {closer!r}")
        raw = self.text[self.pos : index]
        self.pos = index + len(closer)
        return raw

    def expect_end(self) -> None:
        if self.pos != self.end:
            raise self._error("trailing content after value")

    # -- grammar ------------------------------------------------------------

    def parse_value(self) -> Any:
        attrs, self_closing = self._open_tag("v")
        tag = attrs.get("t")
        if tag is None:
            raise self._error("value missing t attribute")
        if tag == "none":
            if not self_closing:
                self._literal("</v>")
            return None
        if tag == "ref":
            index = int(attrs["id"])
            if index >= len(self.refs):
                raise self._error(f"back-reference {index} out of range")
            value = self.refs[index]
            if value is _PENDING:
                raise self._error("cycle through an immutable container")
            return value
        if self_closing:
            raise self._error(f"value of type {tag!r} cannot be empty")
        if tag in ("list", "tuple", "set", "frozenset", "dict", "obj"):
            return self._parse_container(tag, attrs)
        body = unescape_text(self._text_until("</v>"))
        return self._parse_scalar(tag, attrs, body)

    def _parse_scalar(self, tag: str, attrs: dict[str, str], body: str) -> Any:
        try:
            if tag == "bool":
                if body not in ("true", "false"):
                    raise self._error(f"bad bool literal {body!r}")
                return body == "true"
            if tag == "int":
                return int(body)
            if tag == "float":
                return _parse_float(body)
            if tag == "complex":
                real_text, imag_text = body.split(" ")
                return complex(_parse_float(real_text), _parse_float(imag_text))
            if tag == "str":
                return body
            if tag == "bytes":
                return base64.b64decode(body.encode("ascii"), validate=True)
            if tag == "bytearray":
                value = bytearray(
                    base64.b64decode(body.encode("ascii"), validate=True)
                )
                self.refs.append(value)
                return value
            if tag == "array":
                typecode = attrs["c"]
                if typecode not in _ARRAY_TYPECODES:
                    raise self._error(f"bad array typecode {typecode!r}")
                value = array.array(typecode)
                value.frombytes(
                    base64.b64decode(body.encode("ascii"), validate=True)
                )
                self.refs.append(value)
                return value
            if tag == "ndarray":
                return self._parse_ndarray(attrs, body)
        except (ValueError, KeyError) as exc:
            raise self._error(f"bad {tag} literal: {exc}") from exc
        raise self._error(f"unknown value type {tag!r}")

    def _parse_ndarray(self, attrs: dict[str, str], body: str) -> Any:
        if _np is None:  # pragma: no cover - numpy is installed in CI
            raise self._error("ndarray on the wire but numpy unavailable")
        dtype = _np.dtype(attrs["dtype"])
        shape_text = attrs.get("shape", "")
        shape = tuple(int(dim) for dim in shape_text.split()) if shape_text else ()
        raw = base64.b64decode(body.encode("ascii"), validate=True)
        value = _np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        self.refs.append(value)
        return value

    def _parse_container(self, tag: str, attrs: dict[str, str]) -> Any:
        count = int(attrs.get("n", "0"))
        if tag == "list":
            items: list[Any] = []
            self.refs.append(items)
            for _ in range(count):
                items.append(self.parse_value())
            self._literal("</v>")
            return items
        if tag == "dict":
            mapping: dict[Any, Any] = {}
            self.refs.append(mapping)
            for _ in range(count):
                key = self.parse_value()
                mapping[key] = self.parse_value()
            self._literal("</v>")
            return mapping
        if tag == "set":
            result: set[Any] = set()
            self.refs.append(result)
            for _ in range(count):
                result.add(self.parse_value())
            self._literal("</v>")
            return result
        if tag in ("tuple", "frozenset"):
            slot = len(self.refs)
            self.refs.append(_PENDING)
            items = [self.parse_value() for _ in range(count)]
            self._literal("</v>")
            value = tuple(items) if tag == "tuple" else frozenset(items)
            self.refs[slot] = value
            return value
        # tag == "obj"
        wire_name = attrs["c"]
        surrogate = self.formatter.registry.surrogate_by_name(wire_name)
        if surrogate is not None:
            slot = len(self.refs)
            self.refs.append(_PENDING)
            state = self._parse_fields(count)
            value = surrogate.decode(state)
            self.refs[slot] = value
            return value
        obj = self.formatter.registry.new_instance(wire_name)
        self.refs.append(obj)
        state = self._parse_fields(count)
        self.formatter.registry.restore_state(obj, state)
        return obj

    def _parse_fields(self, count: int) -> dict[str, Any]:
        state: dict[str, Any] = {}
        for _ in range(count):
            field_attrs, self_closing = self._open_tag("f")
            if self_closing:
                raise self._error("field element cannot be empty")
            field = field_attrs["n"]
            state[field] = self.parse_value()
            self._literal("</f>")
        self._literal("</v>")
        return state


class _Pending:
    __slots__ = ()


_PENDING = _Pending()
