"""Transparent proxies: the client half of remote method invocation.

A :class:`RemoteProxy` stands in for a remote object.  Attribute access
returns a :class:`RemoteMethod`, and calling it runs the full protocol:
encode a :class:`~repro.remoting.messages.CallMessage` with the channel's
formatter, one channel round trip, decode the
:class:`~repro.remoting.messages.ReturnMessage`, return the value or raise.

This is what the paper means by "it is not required to generate proxy and
ties, since they are automatically generated" (§2): no per-class tooling —
unlike the Java ``rmic`` step reproduced in :mod:`repro.rmi.rmic`.

Two refinements the SCOOPP layer uses:

* ``method.one_way(*args)`` sends a fire-and-forget call (server dispatches
  on a worker and acknowledges immediately) — the transport of SCOOPP's
  asynchronous parallel-object invocations;
* :func:`make_typed_proxy_class` generates a proxy *subclass* with the
  real method names/signatures of an interface, so typed code reads like
  the C# ``(IDServer) Activator.GetObject(...)`` of Fig. 2.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Mapping

from repro.channels.services import ChannelServices, default_services, parse_uri
from repro.errors import (
    ChannelError,
    OverloadError,
    RemoteInvocationError,
    RemotingError,
)
from repro.remoting.messages import CallMessage, ReturnMessage
from repro.remoting.objref import ObjRef, current_host
from repro.telemetry.context import TRACE_HEADER, current_context, to_header
from repro.telemetry.tracer import active_tracer


class RemoteProxy:
    """Dynamic transparent proxy bound to an :class:`ObjRef`.

    All internal state is ``_parc_``-prefixed so arbitrary remote method
    names cannot collide with it.
    """

    def __init__(
        self,
        objref: ObjRef,
        services: ChannelServices | None = None,
        host: Any = None,
    ) -> None:
        self._parc_objref = objref
        self._parc_services = services if services is not None else default_services()
        self._parc_host = host
        self._parc_lock = threading.Lock()
        self._parc_route = None  # cached (channel, authority, path)
        # Serialized size of the last request body sent through this proxy
        # (best-effort statistic; feeds the adaptive grain controller).
        self._parc_last_wire_bytes = 0

    # -- plumbing ------------------------------------------------------------

    def _parc_resolve_route(self):  # type: ignore[no-untyped-def]
        """Pick the first advertised URI whose scheme we have a channel for."""
        with self._parc_lock:
            if self._parc_route is not None:
                return self._parc_route
            last_error: Exception | None = None
            for uri in self._parc_objref.uris:
                parsed = parse_uri(uri)
                try:
                    channel = self._parc_services.channel_for(parsed.scheme)
                except ChannelError as exc:
                    last_error = exc
                    continue
                self._parc_route = (channel, parsed.authority, parsed.path)
                return self._parc_route
            raise RemotingError(
                f"no usable channel for any of {self._parc_objref.uris}"
            ) from last_error

    def _parc_invoke(
        self,
        method: str,
        args: tuple,
        kwargs: Mapping[str, Any],
        one_way: bool = False,
    ) -> Any:
        channel, authority, path = self._parc_resolve_route()
        call = CallMessage(
            uri=path,
            method=method,
            args=tuple(args),
            kwargs=dict(kwargs),
            one_way=one_way,
        )
        headers = {"content-type": channel.formatter.content_type}
        # Client span + context propagation.  With no tracer installed and
        # no active context this costs two lookups — the tracing-off path
        # must stay inside the pingpong overhead guardrail.
        tracer = active_tracer()
        span = (
            tracer.span("rpc", f"call.{method}", uri=path, one_way=one_way)
            if tracer is not None
            else contextlib.nullcontext()
        )
        token = current_host.set(self._parc_host)
        try:
            with span:
                ctx = current_context.get()
                if ctx is not None:
                    headers[TRACE_HEADER] = to_header(ctx)
                # round_trip lets socket transports use their zero-copy
                # encode/decode path; wrapper channels fall back to the
                # dumps -> call -> loads composition automatically.
                result = channel.round_trip(
                    authority, path, call, headers=headers
                )
                self._parc_last_wire_bytes = getattr(
                    channel, "last_request_bytes", 0
                )
        finally:
            current_host.reset(token)
        if not isinstance(result, ReturnMessage):
            raise RemotingError(
                f"server returned {type(result).__qualname__}, expected "
                f"ReturnMessage"
            )
        if result.is_error:
            error = result.error
            if error.type_name == "OverloadError":
                # Server-side shedding (a full mailbox lane, a blown
                # deadline budget) surfaces as the same typed error a
                # local credit stall raises: counted by circuit breakers,
                # never retried, and distinguishable from application
                # failures — the call never ran.
                raise OverloadError(
                    f"remote call {method} shed by {authority}: "
                    f"{error.message}"
                )
            raise RemoteInvocationError(
                f"remote call {method} failed with {error.type_name}: "
                f"{error.message}",
                remote_traceback=error.traceback_text,
            )
        return result.value

    # -- user surface ----------------------------------------------------

    def __getattr__(self, name: str) -> "RemoteMethod":
        if name.startswith("_"):
            raise AttributeError(name)
        return RemoteMethod(self, name)

    def __repr__(self) -> str:
        hint = self._parc_objref.type_hint or "object"
        return f"<RemoteProxy {hint} at {self._parc_objref.uris[0]}>"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RemoteProxy):
            return self._parc_objref.uris == other._parc_objref.uris
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._parc_objref.uris)


class RemoteMethod:
    """One remotely invocable method, bound to its proxy.

    Calling it is a synchronous remote invocation; ``one_way`` is the
    fire-and-forget variant.  Instances are also plain callables, so they
    slot directly into :class:`~repro.remoting.delegates.Delegate` for
    asynchronous invocation — the paper's Fig. 4 pattern
    (``RemoteDel.BeginInvoke(num, ...)``).
    """

    __slots__ = ("_proxy", "_name")

    def __init__(self, proxy: RemoteProxy, name: str) -> None:
        self._proxy = proxy
        self._name = name

    @property
    def __name__(self) -> str:
        return self._name

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._proxy._parc_invoke(self._name, args, kwargs)

    def one_way(self, *args: Any, **kwargs: Any) -> None:
        """Invoke without waiting for the method to run (ack only)."""
        self._proxy._parc_invoke(self._name, args, kwargs, one_way=True)

    def __repr__(self) -> str:
        return f"<RemoteMethod {self._name} of {self._proxy!r}>"


def is_proxy(obj: Any) -> bool:
    """True if *obj* is a transparent remote proxy."""
    return isinstance(obj, RemoteProxy)


def proxy_uri(obj: Any) -> str:
    """Primary remoting URI behind a proxy (diagnostics, tests)."""
    if not isinstance(obj, RemoteProxy):
        raise RemotingError(f"{type(obj).__qualname__} is not a proxy")
    return obj._parc_objref.uris[0]


_typed_proxy_cache: dict[type, type] = {}
_typed_proxy_lock = threading.Lock()


def make_typed_proxy_class(interface: type) -> type:
    """Generate a RemoteProxy subclass mirroring *interface*'s methods.

    Every public callable attribute of *interface* becomes a forwarding
    method with the original docstring, giving typed proxies the look and
    feel of the C# cast in Fig. 2 (``(IDServer) Activator.GetObject(...)``)
    while staying ordinary Python.  Classes are cached per interface.
    """
    with _typed_proxy_lock:
        cached = _typed_proxy_cache.get(interface)
        if cached is not None:
            return cached

        namespace: dict[str, Any] = {
            "__doc__": f"Typed remote proxy for {interface.__qualname__}.",
            "_parc_interface": interface,
        }
        for name in dir(interface):
            if name.startswith("_"):
                continue
            member = getattr(interface, name)
            if not callable(member):
                continue
            namespace[name] = _make_forwarder(name, member)
        proxy_class = type(
            f"{interface.__name__}Proxy", (RemoteProxy,), namespace
        )
        _typed_proxy_cache[interface] = proxy_class
        return proxy_class


def _make_forwarder(name: str, template: Any) -> Any:
    def forwarder(self: RemoteProxy, *args: Any, **kwargs: Any) -> Any:
        return self._parc_invoke(name, args, kwargs)

    forwarder.__name__ = name
    forwarder.__qualname__ = name
    forwarder.__doc__ = getattr(template, "__doc__", None)
    return forwarder
