"""Retry helpers for transient remote failures.

Placement-level failover lives in the runtime (a dead node is excluded
and creation retried elsewhere); this module covers the *call* side: a
transient transport failure — connection reset, briefly unreachable peer —
is often worth retrying before surfacing to the application.

Only transport-level errors are retried by default.  Application errors
(:class:`~repro.errors.RemoteInvocationError`) are never retried: the
remote method ran and failed, and re-running it is a semantic decision
only the caller can make.

Overload signals are never retried either, even though they are
:class:`~repro.errors.ChannelError`\\ s: :class:`~repro.errors.OverloadError`
(the peer or the send path shed the call) and
:class:`~repro.errors.CircuitOpenError` (the breaker quarantined the
peer) both mean "back off" — retrying amplifies exactly the load that
caused them.  :attr:`RetryPolicy.no_retry_on` carries that veto and is
consulted before every retry, whatever ``retry_on`` matches.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.errors import (
    AddressError,
    ChannelError,
    CircuitOpenError,
    OverloadError,
)

T = TypeVar("T")

_jitter_rng = random.Random()


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry: attempts, initial backoff, exponential factor.

    *jitter* spreads each sleep uniformly over ``[delay * (1 - jitter),
    delay * (1 + jitter)]`` so callers that failed together (a node
    died under fan-out) do not retry in lockstep and re-stampede the
    recovering peer.
    """

    attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.2
    retry_on: tuple[type[BaseException], ...] = (ChannelError,)
    #: Types never retried even when ``retry_on`` matches them.  The
    #: defaults are the typed overload signals: re-sending a shed call
    #: feeds the very overload that shed it.
    no_retry_on: tuple[type[BaseException], ...] = (
        OverloadError,
        CircuitOpenError,
    )

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def sleep_for(self, delay: float) -> float:
        """The actual sleep for a nominal *delay*, jitter applied."""
        if self.jitter == 0.0 or delay <= 0.0:
            return delay
        spread = delay * self.jitter
        return delay + _jitter_rng.uniform(-spread, spread)


def call_with_retry(
    fn: Callable[..., T],
    *args: Any,
    policy: RetryPolicy | None = None,
    **kwargs: Any,
) -> T:
    """Invoke *fn* with retries per *policy*; re-raises the last error.

    Typical use with a transparent proxy::

        result = call_with_retry(proxy.fetch, key, policy=RetryPolicy(5))
    """
    active = policy if policy is not None else RetryPolicy()
    delay = active.backoff_s
    last: BaseException | None = None
    for attempt in range(active.attempts):
        try:
            return fn(*args, **kwargs)
        except active.retry_on as exc:  # type: ignore[misc]
            if isinstance(exc, active.no_retry_on):
                raise
            last = exc
            if attempt + 1 < active.attempts and delay > 0:
                time.sleep(active.sleep_for(delay))
                delay *= active.backoff_factor
    assert last is not None  # attempts >= 1 guarantees an exception here
    raise last


class retrying:
    """Decorator form: ``@retrying(RetryPolicy(attempts=5))``."""

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.policy = policy if policy is not None else RetryPolicy()

    def __call__(self, fn: Callable[..., T]) -> Callable[..., T]:
        def wrapper(*args: Any, **kwargs: Any) -> T:
            return call_with_retry(fn, *args, policy=self.policy, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


def is_transport_error(error: BaseException) -> bool:
    """True for failures meaning "the peer may be gone", not "it said no".

    Classification is strictly by exception type — no message sniffing:

    * :class:`~repro.errors.RemoteInvocationError` is never a transport
      error: the remote method ran and raised, so the peer is alive;
    * :class:`~repro.errors.AddressError` is a malformed/unresolvable
      address — retrying cannot fix it;
    * every other :class:`~repro.errors.ChannelError` (including
      :class:`~repro.errors.CircuitOpenError` and chaos-injected
      faults), plus OS-level :class:`ConnectionError`,
      :class:`TimeoutError` and :class:`socket.timeout`, means the wire
      or the peer failed mid-flight.
    """
    from repro.errors import RemoteInvocationError

    if isinstance(error, (RemoteInvocationError, AddressError)):
        return False
    return isinstance(
        error, (ChannelError, ConnectionError, TimeoutError, socket.timeout)
    )
