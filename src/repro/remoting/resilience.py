"""Retry helpers for transient remote failures.

Placement-level failover lives in the runtime (a dead node is excluded
and creation retried elsewhere); this module covers the *call* side: a
transient transport failure — connection reset, briefly unreachable peer —
is often worth retrying before surfacing to the application.

Only transport-level errors are retried by default.  Application errors
(:class:`~repro.errors.RemoteInvocationError`) are never retried: the
remote method ran and failed, and re-running it is a semantic decision
only the caller can make.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.errors import ChannelError, ParcError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry: attempts, initial backoff, exponential factor."""

    attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    retry_on: tuple[type[BaseException], ...] = (ChannelError,)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")


def call_with_retry(
    fn: Callable[..., T],
    *args: Any,
    policy: RetryPolicy | None = None,
    **kwargs: Any,
) -> T:
    """Invoke *fn* with retries per *policy*; re-raises the last error.

    Typical use with a transparent proxy::

        result = call_with_retry(proxy.fetch, key, policy=RetryPolicy(5))
    """
    active = policy if policy is not None else RetryPolicy()
    delay = active.backoff_s
    last: BaseException | None = None
    for attempt in range(active.attempts):
        try:
            return fn(*args, **kwargs)
        except active.retry_on as exc:  # type: ignore[misc]
            last = exc
            if attempt + 1 < active.attempts and delay > 0:
                time.sleep(delay)
                delay *= active.backoff_factor
    assert last is not None  # attempts >= 1 guarantees an exception here
    raise last


class retrying:
    """Decorator form: ``@retrying(RetryPolicy(attempts=5))``."""

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.policy = policy if policy is not None else RetryPolicy()

    def __call__(self, fn: Callable[..., T]) -> Callable[..., T]:
        def wrapper(*args: Any, **kwargs: Any) -> T:
            return call_with_retry(fn, *args, policy=self.policy, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


def is_transport_error(error: BaseException) -> bool:
    """True for failures meaning "the peer may be gone", not "it said no"."""
    from repro.errors import RemoteInvocationError

    if isinstance(error, RemoteInvocationError):
        return False
    return isinstance(error, (ChannelError, ConnectionError)) or (
        isinstance(error, ParcError) and "connect" in str(error).lower()
    )
