"""Asynchronous invocation via delegates (BeginInvoke / EndInvoke).

Paper §2: "C# Remoting also includes support for asynchronous method
invocation through delegates.  A delegate can perform a method call in
background and provides a mechanism to get the remote method return value,
if required.  In Java, a similar functionality must be explicitly
programmed using threads."

A :class:`Delegate` wraps any callable — typically a
:class:`~repro.remoting.proxy.RemoteMethod` — and ``begin_invoke`` runs it
on a client-side worker pool, returning an :class:`AsyncResult` whose
``end_invoke`` joins and yields the value (or re-raises).  This is exactly
the .Net split: the remote call itself is synchronous on the wire; the
*client* offloads the wait.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from repro.errors import RemotingError

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None

#: Size of the shared client-side delegate pool.  Deliberately generous:
#: delegate threads mostly block on the network, and the paper blames part
#: of ParC#'s slowdown on Mono's *too small* pool (§4).
DELEGATE_POOL_SIZE = 32


def _shared_pool() -> ThreadPoolExecutor:
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=DELEGATE_POOL_SIZE,
                thread_name_prefix="parc-delegate",
            )
        return _pool


def shutdown_delegate_pool() -> None:
    """Tear the shared pool down (tests / interpreter exit); recreated lazily."""
    global _pool
    with _pool_lock:
        pool, _pool = _pool, None
    if pool is not None:
        pool.shutdown(wait=True)


class AsyncResult:
    """Handle to an in-flight delegate invocation (the .Net IAsyncResult)."""

    def __init__(self, future: Future, async_state: Any = None) -> None:
        self._future = future
        self.async_state = async_state
        self._wait_handle = threading.Event()
        future.add_done_callback(lambda _f: self._wait_handle.set())

    @property
    def is_completed(self) -> bool:
        return self._future.done()

    @property
    def async_wait_handle(self) -> threading.Event:
        """Event signalled on completion (the WaitHandle analog)."""
        return self._wait_handle

    def wait(self, timeout: float | None = None) -> bool:
        """Block until completion; True if completed within *timeout*."""
        return self._wait_handle.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """Alias for :meth:`end_invoke` with a timeout, future-style."""
        return self._future.result(timeout)


class Delegate:
    """Wraps a callable for background invocation.

    Mirrors the generated code of the paper's Fig. 4::

        RemoteAsyncDelegate RemoteDel = new RemoteAsyncDelegate(obj.process);
        IAsyncResult RemAr = RemoteDel.BeginInvoke(num, null, null);

    becomes::

        remote_del = Delegate(obj.process)
        rem_ar = remote_del.begin_invoke(num)
        ...
        remote_del.end_invoke(rem_ar)      # if the value is needed
    """

    def __init__(
        self,
        target: Callable[..., Any],
        pool: ThreadPoolExecutor | None = None,
    ) -> None:
        if not callable(target):
            raise RemotingError(f"delegate target {target!r} is not callable")
        self.target = target
        self._pool = pool

    def invoke(self, *args: Any, **kwargs: Any) -> Any:
        """Synchronous invocation (the plain ``Invoke``)."""
        return self.target(*args, **kwargs)

    __call__ = invoke

    def begin_invoke(
        self,
        *args: Any,
        callback: Callable[[AsyncResult], None] | None = None,
        state: Any = None,
        **kwargs: Any,
    ) -> AsyncResult:
        """Start the call in background; returns an :class:`AsyncResult`.

        *callback*, if given, runs on the worker thread after completion
        with the AsyncResult (the .Net AsyncCallback convention); *state*
        is stored on the result as ``async_state``.
        """
        pool = self._pool if self._pool is not None else _shared_pool()
        # Run under a copy of the caller's context: the active trace
        # context (and node tracer) follow the call onto the pool thread,
        # so spans made by the background invocation chain to the caller.
        ctx = contextvars.copy_context()
        future = pool.submit(ctx.run, self.target, *args, **kwargs)
        async_result = AsyncResult(future, async_state=state)
        if callback is not None:
            future.add_done_callback(lambda _f: callback(async_result))
        return async_result

    def end_invoke(self, async_result: AsyncResult, timeout: float | None = None) -> Any:
        """Join the call: return its value or re-raise its exception."""
        return async_result.result(timeout)


class OneWayDelegate(Delegate):
    """Delegate whose begin_invoke drops the result (void async calls).

    SCOOPP's asynchronous parallel-object methods return nothing (§3.1:
    "asynchronous (when no value is returned)"); this variant makes the
    intent explicit and refuses ``end_invoke``.
    """

    def end_invoke(self, async_result: AsyncResult, timeout: float | None = None) -> Any:
        raise RemotingError("OneWayDelegate results cannot be retrieved")
