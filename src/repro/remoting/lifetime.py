"""Lease-based lifetime management for published objects.

Paper §3.2: "In the new platform object lifetime is managed by the .Net
implementation" — ParC++ needed explicit PO→RTS destruction requests;
ParC# inherits .Net's leasing.  The analog: every implicitly published
object gets a :class:`Lease`; each dispatched call renews it; an expired
lease lets the host unpublish the object.  Well-known services and
explicitly published objects get infinite leases (they are roots).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from repro.perfmodel.clock import Clock, WallClock

#: Default initial lease, matching .Net remoting's 5-minute default.
DEFAULT_TTL_SECONDS = 300.0


@dataclass
class Lease:
    """Expiry record of one published object path."""

    path: str
    ttl: float
    expires_at: float

    @property
    def is_infinite(self) -> bool:
        return math.isinf(self.ttl)

    def renew(self, now: float) -> None:
        """Push expiry to ``now + ttl`` (never shortens an existing lease)."""
        if not self.is_infinite:
            self.expires_at = max(self.expires_at, now + self.ttl)

    def expired(self, now: float) -> bool:
        return not self.is_infinite and now > self.expires_at


@dataclass
class LeaseManager:
    """Tracks leases for one host; thread-safe."""

    clock: Clock = field(default_factory=WallClock)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._leases: dict[str, Lease] = {}

    def register(self, path: str, ttl: float = DEFAULT_TTL_SECONDS) -> Lease:
        """Create (or return the existing) lease for *path*."""
        now = self.clock.now()
        with self._lock:
            lease = self._leases.get(path)
            if lease is None:
                lease = Lease(path=path, ttl=ttl, expires_at=now + ttl)
                self._leases[path] = lease
            return lease

    def renew(self, path: str) -> None:
        """Renew on activity; unknown paths are ignored (already collected)."""
        now = self.clock.now()
        with self._lock:
            lease = self._leases.get(path)
            if lease is not None:
                lease.renew(now)

    def drop(self, path: str) -> None:
        with self._lock:
            self._leases.pop(path, None)

    def expired_paths(self) -> list[str]:
        """Paths whose lease has lapsed (sorted for determinism)."""
        now = self.clock.now()
        with self._lock:
            return sorted(
                path
                for path, lease in self._leases.items()
                if lease.expired(now)
            )

    def lease_of(self, path: str) -> Lease | None:
        with self._lock:
            return self._leases.get(path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._leases)
