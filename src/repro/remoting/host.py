"""RemotingHost: one application domain's object table and dispatcher.

A host is what the paper's Fig. 2 server ``Main`` sets up implicitly:
channels registered with ``ChannelServices``, well-known service types
registered with ``RemotingConfiguration``, and an invisible dispatcher that
receives call messages, runs the target method, and ships the return value
back.  ParC# then builds its per-node runtime (object managers, factories)
directly on these pieces (§3.2).

Publication modes (§2):

* ``publish(obj, path)`` — marshal an explicitly created instance (the
  Java-RMI-style flow of Fig. 1);
* ``register_well_known(cls, path, WellKnownObjectMode.SINGLETON)`` — one
  lazily created instance serves all calls;
* ``register_well_known(cls, path, WellKnownObjectMode.SINGLE_CALL)`` — a
  fresh instance per call ("object state is not maintained between remote
  calls").
"""

from __future__ import annotations

import contextvars
import enum
import itertools
import threading
import traceback
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping

from repro.channels.base import Channel, ServerBinding
from repro.channels.services import ChannelServices, default_services, parse_uri
from repro.errors import (
    ActivationError,
    RemotingError,
    UnknownObjectError,
)
from repro.flow import CreditGrantor
from repro.perfmodel.clock import Clock, WallClock
from repro.remoting.lifetime import DEFAULT_TTL_SECONDS, LeaseManager
from repro.remoting.messages import CallMessage, RemoteErrorInfo, ReturnMessage
from repro.remoting.objref import (
    MarshalByRefObject,
    MbrSurrogate,
    ObjRef,
    current_host,
)
from repro.remoting.proxy import RemoteProxy, make_typed_proxy_class
from repro.serialization import default_registry
from repro.telemetry.context import TRACE_HEADER, current_context, from_header
from repro.telemetry.tracer import current_tracer_var

# The surrogate that turns MarshalByRefObjects into ObjRefs on the wire is
# process-global; installing it here (imported by every remoting user)
# keeps plain-serialization users unaffected.
default_registry.register_surrogate(MbrSurrogate())


class WellKnownObjectMode(enum.Enum):
    """Server-activated publication modes (paper §2)."""

    SINGLETON = "singleton"
    SINGLE_CALL = "singlecall"


@dataclass
class _Entry:
    """One row of the object table."""

    instance: Any = None  # published or lazily created singleton
    cls: type | None = None  # for well-known entries
    mode: WellKnownObjectMode | None = None
    lock: threading.Lock | None = None


#: Well-known path of the client-activation service on every host.
ACTIVATION_PATH = "__activation__"


class ActivationService(MarshalByRefObject):
    """Server half of client-activated objects (CAO).

    §2: "several ways to publish remote objects" — besides well-known
    singleton/singlecall services, .Net supports *client-activated*
    objects: the client requests a new, private, stateful instance with
    constructor arguments; its lifetime is lease-bound.
    """

    def __init__(self, host: "RemotingHost") -> None:
        self._host = host

    def activate(self, type_name: str, args: tuple, kwargs: dict):  # type: ignore[no-untyped-def]
        cls = self._host._activated_types.get(type_name)
        if cls is None:
            raise ActivationError(
                f"type {type_name!r} is not registered for client "
                f"activation on host {self._host.host_id}"
            )
        try:
            instance = cls(*args, **(kwargs or {}))
        except Exception as exc:  # noqa: BLE001 - activation boundary
            raise ActivationError(
                f"client activation of {type_name} failed: {exc}"
            ) from exc
        # Returned by reference: the caller gets a proxy, the instance
        # lives here under a finite lease renewed by use.
        return instance


class RemotingHost:
    """Object table + dispatcher + channel bindings for one node/process.

    *services* defaults to the process-wide channel registry; simulated
    multi-node setups pass their own so each "node" has an isolated
    channel table.
    """

    def __init__(
        self,
        name: str = "",
        services: ChannelServices | None = None,
        clock: Clock | None = None,
        dispatch_pool_size: int = 16,
    ) -> None:
        self.host_id = name or f"host-{uuid.uuid4().hex[:12]}"
        self.services = services if services is not None else default_services()
        self.clock = clock if clock is not None else WallClock()
        self.leases = LeaseManager(clock=self.clock)
        self._lock = threading.RLock()
        self._objects: dict[str, _Entry] = {}
        self._bindings: dict[str, ServerBinding] = {}
        self._channels: dict[str, Channel] = {}
        self._auto_counter = itertools.count(1)
        self._pool = ThreadPoolExecutor(
            max_workers=dispatch_pool_size,
            thread_name_prefix=f"parc-dispatch-{self.host_id}",
        )
        self._dispatch_pool_size = dispatch_pool_size
        # Window grants advertised to credit-aware peers (repro.flow).
        # The dispatch backlog is the host-level pressure signal; the
        # owning cluster node adds a mailbox-fill source on top.
        self.credit_grantor = CreditGrantor()
        self.credit_grantor.add_source(self._dispatch_pressure)
        self._closed = False
        self._activated_types: dict[str, type] = {}
        # Schemes bound with advertise=False: served, but kept out of
        # published URIs (e.g. the same-node shm backplane, which peers
        # discover by handshake socket rather than by directory entry).
        self._hidden_schemes: set[str] = set()
        # Set by the owning cluster node: a NodeTelemetry whose tracer
        # records dispatch spans in this node's lane of the merged trace.
        self.telemetry = None

    # -- serving ---------------------------------------------------------

    def listen(
        self, channel: Channel, authority: str, advertise: bool = True
    ) -> ServerBinding:
        """Serve this host's objects over *channel* at *authority*.

        The channel is also registered with the host's ChannelServices (if
        its scheme is free) so locally created proxies can dial peers over
        the same scheme.  One binding per scheme per host.

        ``advertise=False`` serves the binding but keeps its scheme out
        of :attr:`uris` (and therefore out of every ObjRef minted here):
        used for the shm backplane, which same-node peers find through
        its handshake socket, never through the directory.
        """
        with self._lock:
            if self._closed:
                raise RemotingError("host is closed")
            if channel.scheme in self._bindings:
                raise RemotingError(
                    f"host already listens on scheme {channel.scheme!r}"
                )
            formatter = channel.formatter

            def handler(path: str, body: bytes, headers: Mapping[str, str]) -> bytes:
                return self._handle_request(formatter, path, body, headers)

            # Bindings that understand credit-based backpressure pick the
            # grantor off the handler; plain handlers (tests, pingpong
            # servers) simply have none and responses stay uncredited.
            handler.credit_grantor = self.credit_grantor
            binding = channel.listen(authority, handler)
            self._bindings[channel.scheme] = binding
            self._channels[channel.scheme] = channel
            if not advertise:
                self._hidden_schemes.add(channel.scheme)
            try:
                self.services.register_channel(channel)
            except Exception:
                # A channel for this scheme is already registered for
                # client use; serving still works through our binding.
                pass
            return binding

    @property
    def uris(self) -> tuple[str, ...]:
        """Base URIs (one per bound scheme), e.g. ``tcp://127.0.0.1:4711``."""
        with self._lock:
            return tuple(
                f"{scheme}://{binding.authority}"
                for scheme, binding in sorted(self._bindings.items())
                if scheme not in self._hidden_schemes
            )

    # -- publication -------------------------------------------------------

    def publish(
        self,
        obj: MarshalByRefObject,
        path: str | None = None,
        ttl: float = float("inf"),
    ) -> ObjRef:
        """Marshal an explicit instance at *path* (auto-generated if None).

        Explicit publications default to an infinite lease: the caller
        owns the name.  Implicit publications (an object passed through a
        call) go through :meth:`objref_for`, which uses the finite default
        lease so abandoned objects are eventually collected.
        """
        if not isinstance(obj, MarshalByRefObject):
            raise RemotingError(
                f"{type(obj).__qualname__} does not derive from "
                f"MarshalByRefObject; by-value types cannot be published"
            )
        with self._lock:
            if obj._parc_path is not None and obj._parc_home is self:
                return self._objref_for_path(obj._parc_path, type(obj))
            if path is None:
                path = (
                    f"auto/{type(obj).__name__.lower()}-"
                    f"{next(self._auto_counter)}"
                )
            if path in self._objects:
                raise RemotingError(f"path {path!r} is already published")
            self._objects[path] = _Entry(instance=obj)
            obj._parc_home = self
            obj._parc_path = path
            self.leases.register(path, ttl)
            return self._objref_for_path(path, type(obj))

    def register_well_known(
        self,
        cls: type,
        path: str,
        mode: WellKnownObjectMode = WellKnownObjectMode.SINGLETON,
    ) -> None:
        """Publish *cls* as a server-activated well-known service.

        The paper's Fig. 2/6 pattern: the server registers an object
        *factory*, not an instance; instantiation happens at first request
        (singleton) or per request (singlecall).
        """
        if not (isinstance(cls, type) and issubclass(cls, MarshalByRefObject)):
            raise RemotingError(
                f"well-known type must derive from MarshalByRefObject, "
                f"got {cls!r}"
            )
        with self._lock:
            if path in self._objects:
                raise RemotingError(f"path {path!r} is already published")
            self._objects[path] = _Entry(
                cls=cls, mode=mode, lock=threading.Lock()
            )
            self.leases.register(path, float("inf"))

    def register_activated(self, cls: type, type_name: str | None = None) -> str:
        """Allow *cls* to be activated by clients (CAO mode).

        The activation service itself is published lazily at
        :data:`ACTIVATION_PATH`.  Returns the registered type name clients
        pass to :meth:`Activator.create_instance`.
        """
        if not (isinstance(cls, type) and issubclass(cls, MarshalByRefObject)):
            raise RemotingError(
                f"client-activated type must derive from "
                f"MarshalByRefObject, got {cls!r}"
            )
        name = type_name or f"{cls.__module__}.{cls.__qualname__}"
        with self._lock:
            existing = self._activated_types.get(name)
            if existing is not None and existing is not cls:
                raise RemotingError(
                    f"activated type name {name!r} already registered"
                )
            self._activated_types[name] = cls
            if ACTIVATION_PATH not in self._objects:
                self._objects[ACTIVATION_PATH] = _Entry(
                    instance=ActivationService(self)
                )
                self.leases.register(ACTIVATION_PATH, float("inf"))
        return name

    def create_instance(self, base_uri: str, type_name: str, *args: Any, **kwargs: Any):
        """Client side of CAO: a fresh remote instance with ctor args.

        *base_uri* is the target host's base (e.g. ``tcp://host:port``);
        returns a transparent proxy to the new instance.
        """
        activation = self.get_object(f"{base_uri}/{ACTIVATION_PATH}")
        return activation.activate(type_name, tuple(args), dict(kwargs))

    def unpublish(self, path: str) -> None:
        """Remove a publication; in-flight calls to it fail from then on."""
        with self._lock:
            entry = self._objects.pop(path, None)
        self.leases.drop(path)
        if entry is not None and isinstance(entry.instance, MarshalByRefObject):
            entry.instance._parc_home = None
            entry.instance._parc_path = None

    def collect_expired(self) -> list[str]:
        """Unpublish every object whose lease has lapsed; returns paths."""
        expired = self.leases.expired_paths()
        for path in expired:
            self.unpublish(path)
        return expired

    def start_lease_sweeper(self, interval_s: float = 10.0) -> None:
        """Collect expired leases periodically in the background.

        The .Net lease manager runs a poll thread with a default 10 s
        period; this is its analog.  Idempotent; the sweeper stops when
        the host closes.
        """
        if interval_s <= 0:
            raise RemotingError("sweeper interval must be positive")
        with self._lock:
            if self._closed:
                raise RemotingError("host is closed")
            if getattr(self, "_sweeper_stop", None) is not None:
                return
            stop = self._sweeper_stop = threading.Event()

        def sweep() -> None:
            while not stop.wait(interval_s):
                try:
                    self.collect_expired()
                except Exception:  # noqa: BLE001 - sweeper must survive
                    pass

        self._sweeper_thread = threading.Thread(
            target=sweep,
            name=f"parc-lease-sweeper-{self.host_id}",
            daemon=True,
        )
        self._sweeper_thread.start()

    def published_paths(self) -> list[str]:
        with self._lock:
            return sorted(self._objects)

    # -- references and proxies ---------------------------------------------

    def objref_for(self, obj: MarshalByRefObject) -> ObjRef:
        """Reference for *obj*, publishing it implicitly if needed."""
        with self._lock:
            if obj._parc_path is None or obj._parc_home is not self:
                self.publish(obj, ttl=DEFAULT_TTL_SECONDS)
            return self._objref_for_path(obj._parc_path, type(obj))

    def _objref_for_path(self, path: str, cls: type) -> ObjRef:
        uris = tuple(f"{base}/{path}" for base in self.uris)
        if not uris:
            # Not listening yet: loopback-only reference through the
            # host-id shortcut (resolvable by this host alone).
            uris = (f"loopback://unbound-{self.host_id}/{path}",)
        return ObjRef(
            uris=uris,
            type_hint=f"{cls.__module__}.{cls.__qualname__}",
            host_id=self.host_id,
        )

    def resolve_local(self, ref: ObjRef) -> Any:
        """Return the live local instance behind *ref* if this host owns it.

        The reference shortcut: an ObjRef that travels back to its home
        host decodes to the original object, not a proxy (same as .Net).
        Only instance-backed entries short-circuit; well-known singletons
        do so once created.
        """
        if ref.host_id != self.host_id:
            return None
        path = parse_uri(ref.uris[0]).path
        with self._lock:
            entry = self._objects.get(path)
            if entry is not None and entry.instance is not None:
                return entry.instance
        return None

    def make_proxy(self, ref: ObjRef, interface: type | None = None) -> RemoteProxy:
        """Build a transparent proxy bound to this host's channel table."""
        if interface is not None:
            proxy_class = make_typed_proxy_class(interface)
            return proxy_class(ref, services=self.services, host=self)
        return RemoteProxy(ref, services=self.services, host=self)

    def get_object(self, uri: str, interface: type | None = None) -> RemoteProxy:
        """Proxy for an arbitrary remoting URI (Activator.GetObject)."""
        parse_uri(uri)  # validate early
        ref = ObjRef(uris=(uri,))
        return self.make_proxy(ref, interface)

    # -- dispatch ------------------------------------------------------------

    def _handle_request(
        self,
        formatter,  # type: ignore[no-untyped-def]
        path: str,
        body: bytes,
        headers: Mapping[str, str],
    ) -> bytes:
        token = current_host.set(self)
        # Re-activate the caller's trace context so spans recorded while
        # serving this request — and any nested remote calls they make —
        # chain to the client span that sent the header.
        incoming = from_header(headers.get(TRACE_HEADER)) if headers else None
        trace_token = (
            current_context.set(incoming) if incoming is not None else None
        )
        telemetry = self.telemetry
        tracer_token = (
            current_tracer_var.set(telemetry.tracer)
            if telemetry is not None and telemetry.enabled
            else None
        )
        try:
            try:
                message = formatter.loads(body)
                if not isinstance(message, CallMessage):
                    raise RemotingError(
                        f"expected CallMessage, got {type(message).__qualname__}"
                    )
                if message.one_way:
                    # copy_context() carries the trace context (and node
                    # tracer) onto the pool thread that runs the call.
                    dispatch_ctx = contextvars.copy_context()
                    self._pool.submit(
                        dispatch_ctx.run, self._run_call_silently, message
                    )
                    result = ReturnMessage(value=None)
                else:
                    result = self._run_call(message)
            except Exception as exc:  # noqa: BLE001 - protocol boundary
                result = ReturnMessage(
                    error=RemoteErrorInfo.from_exception(
                        exc, traceback.format_exc()
                    )
                )
            return formatter.dumps(result)
        finally:
            if tracer_token is not None:
                current_tracer_var.reset(tracer_token)
            if trace_token is not None:
                current_context.reset(trace_token)
            current_host.reset(token)

    def _dispatch_pressure(self) -> float:
        """Dispatch backlog as a 0..1 pressure fraction.

        The one-way pool's queue is unbounded; a backlog of a few times
        the pool size means dispatch threads cannot keep up and peers
        should be throttled toward the minimum grant.
        """
        backlog = self._pool._work_queue.qsize()
        return backlog / float(4 * self._dispatch_pool_size)

    def _run_call(self, message: CallMessage) -> ReturnMessage:
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            with telemetry.tracer.span(
                "dispatch",
                f"serve.{message.method}",
                uri=message.uri,
                one_way=message.one_way,
            ):
                return self._run_call_inner(message)
        return self._run_call_inner(message)

    def _run_call_inner(self, message: CallMessage) -> ReturnMessage:
        target = self._activate(message.uri)
        method = self._resolve_method(target, message.method)
        try:
            value = method(*message.args, **message.kwargs)
        except Exception as exc:  # noqa: BLE001 - user method boundary
            return ReturnMessage(
                error=RemoteErrorInfo.from_exception(exc, traceback.format_exc())
            )
        self.leases.renew(message.uri)
        return ReturnMessage(value=value)

    def _run_call_silently(self, message: CallMessage) -> None:
        """One-way execution path: errors are recorded, never propagated."""
        token = current_host.set(self)
        try:
            result = self._run_call(message)
            if result.is_error:
                self._note_one_way_failure(message, result.error)
        except Exception as exc:  # noqa: BLE001 - worker thread boundary
            self._note_one_way_failure(
                message, RemoteErrorInfo.from_exception(exc)
            )
        finally:
            current_host.reset(token)

    def _note_one_way_failure(
        self, message: CallMessage, error: RemoteErrorInfo
    ) -> None:
        # One-way failures have no reply channel.  Keep the most recent
        # few for post-mortem inspection by tests and operators.
        with self._lock:
            failures = getattr(self, "_one_way_failures", None)
            if failures is None:
                failures = self._one_way_failures = []
            failures.append((message.uri, message.method, error))
            del failures[:-32]

    @property
    def one_way_failures(self) -> list[tuple[str, str, RemoteErrorInfo]]:
        with self._lock:
            return list(getattr(self, "_one_way_failures", []))

    def _activate(self, path: str) -> Any:
        with self._lock:
            entry = self._objects.get(path)
        if entry is None:
            raise UnknownObjectError(
                f"no object published at {path!r} on host {self.host_id}"
            )
        if entry.instance is not None and entry.mode is None:
            return entry.instance
        if entry.mode is WellKnownObjectMode.SINGLE_CALL:
            return self._construct(entry.cls)
        # Singleton: lazily construct exactly once.
        with entry.lock:
            if entry.instance is None:
                entry.instance = self._construct(entry.cls)
                entry.instance._parc_home = self
                entry.instance._parc_path = path
            return entry.instance

    @staticmethod
    def _construct(cls: type) -> Any:
        try:
            return cls()
        except Exception as exc:  # noqa: BLE001 - activation boundary
            raise ActivationError(
                f"well-known type {cls.__qualname__} failed to construct: "
                f"{exc}"
            ) from exc

    @staticmethod
    def _resolve_method(target: Any, name: str) -> Any:
        if name.startswith("_"):
            raise RemotingError(f"method {name!r} is not remotely callable")
        method = getattr(target, name, None)
        if method is None or not callable(method):
            raise RemotingError(
                f"{type(target).__qualname__} has no remote method {name!r}"
            )
        return method

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Stop serving; idempotent.  Channels shared via services stay open."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            bindings = list(self._bindings.values())
            self._bindings.clear()
            sweeper_stop = getattr(self, "_sweeper_stop", None)
        if sweeper_stop is not None:
            sweeper_stop.set()
        for binding in bindings:
            binding.close()
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "RemotingHost":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- process-default conveniences (the static .Net API surface) -------------

_default_host_lock = threading.Lock()
_default_host: RemotingHost | None = None


def default_host() -> RemotingHost:
    """The process-wide host used by the static facades below."""
    global _default_host
    with _default_host_lock:
        if _default_host is None or _default_host._closed:
            _default_host = RemotingHost(name="default")
        return _default_host


def reset_default_host() -> None:
    """Close and forget the process-default host (test isolation)."""
    global _default_host
    with _default_host_lock:
        host, _default_host = _default_host, None
    if host is not None:
        host.close()


class RemotingConfiguration:
    """Static facade mirroring ``RemotingConfiguration`` in Fig. 2."""

    @staticmethod
    def register_well_known_service_type(
        cls: type,
        path: str,
        mode: WellKnownObjectMode = WellKnownObjectMode.SINGLETON,
        host: RemotingHost | None = None,
    ) -> None:
        (host or default_host()).register_well_known(cls, path, mode)


class Activator:
    """Static facade mirroring ``Activator`` in Fig. 2."""

    @staticmethod
    def get_object(
        uri: str,
        interface: type | None = None,
        host: RemotingHost | None = None,
    ) -> RemoteProxy:
        return (host or default_host()).get_object(uri, interface)

    @staticmethod
    def create_instance(
        base_uri: str,
        type_name: str,
        *args: Any,
        host: RemotingHost | None = None,
        **kwargs: Any,
    ):
        """Client-activated instance (``Activator.CreateInstance``)."""
        return (host or default_host()).create_instance(
            base_uri, type_name, *args, **kwargs
        )
