"""The .Net remoting analog: transparent remote method invocation.

This is the substrate ParC# is built on (paper §2–3).  It reproduces the
pieces the paper leans on, with the same division of labour:

* :class:`MarshalByRefObject` — base class of remotely callable objects;
  instances crossing the wire are replaced by an :class:`ObjRef` and
  materialize as transparent proxies on the other side (Fig. 2's
  ``DServer : MarshalByRefObject``).
* :class:`RemotingConfiguration` / :data:`WellKnownObjectMode` — publish a
  type as a well-known service in ``SINGLETON`` or ``SINGLE_CALL`` mode
  (the "two alternatives to instantiate objects" of §2).
* :class:`Activator` — ``get_object(uri)`` returns a proxy without any
  client-side registration or stub generation ("it is not required to
  generate proxy and ties, since they are automatically generated").
* :class:`Delegate` — asynchronous invocation via ``begin_invoke`` /
  ``end_invoke`` returning an :class:`AsyncResult` (§2: "C# Remoting also
  includes support for asynchronous method invocation through delegates").
* :class:`RemotingHost` — one "application domain": an object table, a
  dispatcher, channels, and lease-based lifetime (§3.2: "object lifetime
  is managed by the .Net implementation").
"""

from repro.remoting.objref import MarshalByRefObject, ObjRef
from repro.remoting.messages import CallMessage, RemoteErrorInfo, ReturnMessage
from repro.remoting.proxy import RemoteProxy, is_proxy, proxy_uri
from repro.remoting.delegates import AsyncResult, Delegate, OneWayDelegate
from repro.remoting.host import (
    Activator,
    RemotingConfiguration,
    RemotingHost,
    WellKnownObjectMode,
)
from repro.remoting.lifetime import Lease, LeaseManager

__all__ = [
    "Activator",
    "AsyncResult",
    "CallMessage",
    "Delegate",
    "Lease",
    "LeaseManager",
    "MarshalByRefObject",
    "ObjRef",
    "OneWayDelegate",
    "RemoteErrorInfo",
    "RemoteProxy",
    "RemotingConfiguration",
    "RemotingHost",
    "ReturnMessage",
    "WellKnownObjectMode",
    "is_proxy",
    "proxy_uri",
]
