"""Marshal-by-reference objects and their wire form (ObjRef).

.Net remoting draws one line through the object world: types deriving from
``MarshalByRefObject`` cross the wire *by reference* (the receiver gets a
transparent proxy), everything else crosses *by value* (the receiver gets a
copy).  The paper's Fig. 2 server derives from ``MarshalByRefObject``; the
SCOOPP implementation objects of Fig. 6 do too, while passive objects and
aggregated parameter structs are ``[Serializable]`` copies.

The mechanics here: a :class:`MbrSurrogate` registered with the
serialization registry intercepts any :class:`MarshalByRefObject` (or
existing proxy) during encoding, asks the *current host* (a context
variable set by the dispatcher / host APIs) to publish the object, and
writes an :class:`ObjRef`.  Decoding an ObjRef materializes a proxy bound
to the decoding side's channel services — unless the reference points back
at an object the decoding host itself owns, in which case the local
instance is returned (reference shortcut, same as .Net).
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass
from typing import Any

from repro.errors import RemotingError
from repro.serialization.registry import Surrogate


class MarshalByRefObject:
    """Base class of remotely invocable objects.

    Subclasses need no other ceremony: publishing happens either explicitly
    (``host.publish(obj, uri)`` / ``RemotingConfiguration``) or implicitly
    when an instance is passed through a remote call while a host is
    current.  The instance itself never leaves its home host.
    """

    #: Set when the object is published; the home host's identity.
    _parc_home: "Any | None" = None
    #: The object's path within its home host, once published.
    _parc_path: str | None = None

    def is_published(self) -> bool:
        return self._parc_path is not None


@dataclass(frozen=True)
class ObjRef:
    """Serializable reference to a marshal-by-reference object.

    ``uris`` lists one remoting URI per channel the home host listens on;
    clients pick the first whose scheme they have a channel for.
    ``type_hint`` is advisory (diagnostics, proxy repr) — dispatch is by
    name at the server, never by client-side type trust.
    """

    uris: tuple[str, ...]
    type_hint: str = ""
    host_id: str = ""

    def __post_init__(self) -> None:
        if not self.uris:
            raise RemotingError("ObjRef must carry at least one URI")


#: The host currently encoding/decoding messages on this thread.  Host
#: methods and the dispatcher set this around formatter calls so that the
#: surrogate can publish/shortcut objects against the right object table.
current_host: contextvars.ContextVar[Any] = contextvars.ContextVar(
    "parc_current_host", default=None
)


class MbrSurrogate(Surrogate):
    """Replaces MarshalByRefObjects (and proxies) with ObjRefs on the wire."""

    wire_name = "parc.remoting.ObjRef"

    def applies_to(self, obj: Any) -> bool:
        # Import here to avoid a module cycle (proxy imports objref).
        from repro.remoting.proxy import RemoteProxy

        return isinstance(obj, (MarshalByRefObject, ObjRef, RemoteProxy))

    def encode(self, obj: Any) -> dict[str, Any]:
        from repro.remoting.proxy import RemoteProxy

        if isinstance(obj, ObjRef):
            ref = obj
        elif isinstance(obj, RemoteProxy):
            # Forward the reference unchanged: passing a proxy onward hands
            # the receiver a reference to the *original* object (SCOOPP
            # §3.1: parallel-object references may be sent as arguments).
            ref = obj._parc_objref
        else:
            host = current_host.get()
            if host is None:
                raise RemotingError(
                    f"cannot marshal {type(obj).__qualname__} by reference "
                    f"outside a remoting host context"
                )
            ref = host.objref_for(obj)
        return {
            "uris": list(ref.uris),
            "type_hint": ref.type_hint,
            "host_id": ref.host_id,
        }

    def decode(self, state: dict[str, Any]) -> Any:
        ref = ObjRef(
            uris=tuple(state["uris"]),
            type_hint=state.get("type_hint", ""),
            host_id=state.get("host_id", ""),
        )
        host = current_host.get()
        if host is not None:
            local = host.resolve_local(ref)
            if local is not None:
                return local
            return host.make_proxy(ref)
        from repro.remoting.proxy import RemoteProxy

        return RemoteProxy(ref)
