"""Wire messages of the remoting protocol.

A remote invocation is two messages: a :class:`CallMessage` (method name +
argument graph) and a :class:`ReturnMessage` (result or error).  Both are
plain registered serializable types, so they travel through whichever
formatter the channel uses — binary on ``tcp://``, SOAP on ``http://`` —
exactly the .Net channel/formatter split the paper benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.serialization import register_codec, serializable


@serializable(name="parc.remoting.Call")
@dataclass
class CallMessage:
    """One remote method invocation request.

    ``one_way`` marks fire-and-forget calls (the transport still returns an
    acknowledgement frame, but the server dispatches the method on a worker
    thread and acknowledges immediately) — the mechanism SCOOPP's
    asynchronous parallel-object calls ride on.
    """

    uri: str
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    one_way: bool = False

    def __post_init__(self) -> None:
        # Defensive normalisation: formatters decode sequences faithfully,
        # but user code may hand us lists.
        if isinstance(self.args, list):
            self.args = tuple(self.args)


@serializable(name="parc.remoting.ErrorInfo")
@dataclass
class RemoteErrorInfo:
    """Portable description of a server-side exception.

    The exception object itself may not be serializable (and re-raising
    arbitrary decoded exceptions would be an execution vector), so the
    client rethrows a :class:`~repro.errors.RemoteInvocationError` carrying
    this description.
    """

    type_name: str
    message: str
    traceback_text: str = ""

    @classmethod
    def from_exception(cls, exc: BaseException, traceback_text: str = "") -> "RemoteErrorInfo":
        return cls(
            type_name=type(exc).__qualname__,
            message=str(exc),
            traceback_text=traceback_text,
        )


@serializable(name="parc.remoting.Return")
@dataclass
class ReturnMessage:
    """Response to a :class:`CallMessage`: a value or an error, never both."""

    value: Any = None
    error: RemoteErrorInfo | None = None

    @property
    def is_error(self) -> bool:
        return self.error is not None


@serializable(name="parc.remoting.ReturnN")
@dataclass
class ReturnBatch:
    """Aggregated response to an ``invoke_batch``: N results in one frame.

    The reply-side twin of the columnar ``processN`` aggregate: instead of
    N status+payload response frames, the server ships one status frame
    whose body is this message — ``count`` results packed either as a
    contiguous ``array('d')`` column (all-float results, the common
    numeric-kernel case; the fast formatter encodes arrays as a typecode +
    one memcpy) or a plain list with ``None`` at error slots.  Per-call
    failures ride in ``errors`` as ``(index, type_name, message,
    traceback_text)`` tuples so one bad call does not poison its batch.

    Travels inside the ordinary ``ReturnMessage.value`` over the existing
    STATUS_OK path — old peers never see it (they lack ``invoke_batch``
    and the client falls back to per-call invokes), so no new status byte
    or header flag is needed on the wire.
    """

    count: int = 0
    results: Any = None
    errors: tuple = ()


# The protocol messages dominate the wire hot path, so all three get
# compiled codecs: encode skips the per-value type ladder, decode installs
# fields directly.  Payloads stay byte-identical to the generic formatter.
register_codec(CallMessage)
register_codec(RemoteErrorInfo)
register_codec(ReturnMessage)
register_codec(ReturnBatch)
