"""Wire messages of the remoting protocol.

A remote invocation is two messages: a :class:`CallMessage` (method name +
argument graph) and a :class:`ReturnMessage` (result or error).  Both are
plain registered serializable types, so they travel through whichever
formatter the channel uses — binary on ``tcp://``, SOAP on ``http://`` —
exactly the .Net channel/formatter split the paper benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.serialization import register_codec, serializable


@serializable(name="parc.remoting.Call")
@dataclass
class CallMessage:
    """One remote method invocation request.

    ``one_way`` marks fire-and-forget calls (the transport still returns an
    acknowledgement frame, but the server dispatches the method on a worker
    thread and acknowledges immediately) — the mechanism SCOOPP's
    asynchronous parallel-object calls ride on.
    """

    uri: str
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    one_way: bool = False

    def __post_init__(self) -> None:
        # Defensive normalisation: formatters decode sequences faithfully,
        # but user code may hand us lists.
        if isinstance(self.args, list):
            self.args = tuple(self.args)


@serializable(name="parc.remoting.ErrorInfo")
@dataclass
class RemoteErrorInfo:
    """Portable description of a server-side exception.

    The exception object itself may not be serializable (and re-raising
    arbitrary decoded exceptions would be an execution vector), so the
    client rethrows a :class:`~repro.errors.RemoteInvocationError` carrying
    this description.
    """

    type_name: str
    message: str
    traceback_text: str = ""

    @classmethod
    def from_exception(cls, exc: BaseException, traceback_text: str = "") -> "RemoteErrorInfo":
        return cls(
            type_name=type(exc).__qualname__,
            message=str(exc),
            traceback_text=traceback_text,
        )


@serializable(name="parc.remoting.Return")
@dataclass
class ReturnMessage:
    """Response to a :class:`CallMessage`: a value or an error, never both."""

    value: Any = None
    error: RemoteErrorInfo | None = None

    @property
    def is_error(self) -> bool:
        return self.error is not None


# The protocol messages dominate the wire hot path, so all three get
# compiled codecs: encode skips the per-value type ladder, decode installs
# fields directly.  Payloads stay byte-identical to the generic formatter.
register_codec(CallMessage)
register_codec(RemoteErrorInfo)
register_codec(ReturnMessage)
