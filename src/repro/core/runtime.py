"""The runtime system entry points: init, shutdown, grain creation.

Typical use (the paper's programming model, in Python)::

    import repro.core as parc

    @parc.parallel
    class PrimeServer:
        def process(self, nums):          # async (no return value)
            ...
        def count(self):                  # sync (returns a value)
            return ...

    parc.init(nodes=4)
    try:
        server = parc.new(PrimeServer)    # PO; IO placed by the OM
        server.process([2, 3, 5])         # asynchronous, may be aggregated
        total = server.count()            # synchronous, flushes first
    finally:
        parc.shutdown()

``parc.new(Cls, ...)`` and instantiating a generated PO class are
equivalent; the preprocessor route produces modules where the original
class *name* already denotes the PO (paper §3.2: "the original parallel
object classes are replaced by generated PO classes").
"""

from __future__ import annotations

import contextlib
import json
import threading
import weakref
from typing import Any, Iterator

from repro.core.config import ParcConfig
from repro.core.depgraph import MAIN, DependenceTracker
from repro.core.grain import AdaptiveGrainController, GrainPolicy
from repro.core.impl import ImplementationObject, current_node
from repro.core.model import ParallelClassInfo, parallel_class_table
from repro.core.proxy_object import (
    LocalGrain,
    ProxyObject,
    RemoteGrain,
    make_parallel_class,
)
from repro.errors import NodeLostError, NotRunningError, ScooppError
from repro.remoting.objref import ObjRef, current_host

# NOTE: repro.cluster modules import repro.core (grain, impl, model), so
# the cluster itself is imported lazily inside the functions that need it
# — a module-level import here would be circular when a worker process's
# first import is a repro.cluster module.

if False:  # pragma: no cover - static typing aid only
    from repro.cluster.cluster import Cluster  # noqa: F401
    from repro.cluster.node import Node  # noqa: F401


class ParcRuntime:
    """One live SCOOPP runtime over a cluster."""

    def __init__(self, cluster) -> None:  # type: ignore[no-untyped-def]
        self.cluster = cluster
        self.dependence = DependenceTracker()
        self._lock = threading.Lock()
        self._closed = False
        # Self-healing: live remote grains (weak, so released POs drop
        # out) plus a lock serializing respawn decisions.  The runtime
        # subscribes to every in-process node's failure detector; a
        # node-down verdict — proactive (heartbeat) or reactive (a failed
        # call) — funnels into _handle_node_down.
        self._grains: "weakref.WeakSet[RemoteGrain]" = weakref.WeakSet()
        self._respawn_lock = threading.Lock()
        for node in getattr(cluster, "nodes", []):
            node.om.on_node_down(self._handle_node_down)
        # Live migration: when the scheduler moves a grain, repoint the
        # tracking POs at its new home so follow-up calls skip the
        # victim's forwarding shell.
        on_migration = getattr(cluster, "on_migration", None)
        if on_migration is not None:
            on_migration(self._handle_migration)

    # -- grain creation ----------------------------------------------------

    def _creating_node(self):  # type: ignore[no-untyped-def]
        from repro.cluster.node import Node

        node = current_node.get()
        if node is not None and isinstance(node, Node):
            return node
        return self.cluster.home_node

    @staticmethod
    def _creator_label() -> str:
        node = current_node.get()
        if node is None:
            return MAIN
        impl = _executing_impl.get()
        if impl is None:
            return MAIN
        return _impl_label(impl)

    #: Placement attempts before giving up on creating an IO (a failed
    #: attempt marks the target node dead and re-places elsewhere).
    CREATE_ATTEMPTS = 3

    def create_grain(
        self, info: ParallelClassInfo, args: tuple, kwargs: dict
    ) -> Any:
        """Fig. 5's generated constructor body: decide, place, create.

        Node failures are absorbed: if the chosen node is unreachable it
        is recorded dead with the object manager and placement retries on
        the remaining nodes (up to :data:`CREATE_ATTEMPTS` times).
        """
        from repro.errors import (
            ChannelError,
            RemoteInvocationError,
            RemotingError,
        )

        self._ensure_open()
        node = self._creating_node()
        creator = self._creator_label()
        last_error: Exception | None = None
        for _attempt in range(self.CREATE_ATTEMPTS):
            decision, factory_uri = node.om.decide_and_place(info.wire_name)
            if factory_uri is None:
                # Object agglomeration: intra-grain creation (Fig. 3 call d).
                instance = info.cls(*args, **kwargs)
                grain = LocalGrain(instance, info.wire_name)
                self.dependence.record_creation(
                    creator, f"local:{grain.grain_id}"
                )
                return grain
            factory = node.make_proxy(factory_uri)
            token = current_host.set(node.host)
            try:
                impl = factory.create(
                    info.wire_name, tuple(args), dict(kwargs)
                )
            except RemoteInvocationError:
                # The node answered: this is an application failure (for
                # example the user constructor raised), not a dead node.
                raise
            except (ChannelError, RemotingError) as exc:
                last_error = exc
                base_uri = factory_uri.rsplit("/", 1)[0]
                node.om.note_dead(base_uri)
                continue
            finally:
                current_host.reset(token)
            grain = RemoteGrain(impl, max_calls=decision.max_calls)
            self.adopt_grain(
                grain,
                spec=(info, tuple(args), dict(kwargs)),
                restartable=info.restartable,
            )
            self.dependence.record_creation(creator, _grain_label(grain))
            return grain
        raise ScooppError(
            f"could not place {info.wire_name} after "
            f"{self.CREATE_ATTEMPTS} attempts: {last_error}"
        ) from last_error

    # -- self-healing: respawn and loss ------------------------------------

    def adopt_grain(
        self,
        grain: RemoteGrain,
        spec: tuple | None = None,
        restartable: bool = False,
        info: ParallelClassInfo | None = None,
    ) -> None:
        """Track *grain* for crash recovery and give it the recoverer.

        Grains without a creation *spec* (e.g. rebuilt from a PO
        reference that crossed the wire) cannot be respawned — only the
        creating runtime knows the constructor arguments — so they are
        marked lost instead when their node dies.

        When the grain's class is known (*spec* or *info*) the wire fast
        path is wired up too: columnar aggregates (the user class
        supplies method signatures for column planning) and, under an
        adaptive grain controller, the bytes-per-call feedback loop.
        """
        grain.spec = spec
        grain.restartable = restartable and spec is not None
        grain.recoverer = self.recover_grain
        if info is None and spec is not None:
            info = spec[0]
        if info is not None:
            grain.impl_class = info.cls
            grain.columnar = bool(
                getattr(self.cluster, "wire_fastpath", False)
            )
            controller = getattr(self.cluster, "grain", None)
            if isinstance(controller, AdaptiveGrainController):
                class_name = info.wire_name

                def _observe(nbytes: int, calls: int) -> None:
                    controller.observe_call_bytes(class_name, nbytes, calls)

                grain.wire_observer = _observe
                # Online per-method retuning: the proxy consults the
                # controller's decide_method() between flushes, fed by
                # the parc.method.seconds.* histograms the nodes merge
                # cluster-wide.  Gated by SchedulerConfig.autotune.
                sched_cfg = getattr(self.cluster, "sched_config", None)
                if getattr(sched_cfg, "autotune", True):
                    grain.tuner = controller
                    grain.tuner_class = class_name
        self._grains.add(grain)

    def recover_grain(self, grain: RemoteGrain, cause: BaseException) -> bool:
        """Reactive failure detection: a call on *grain* hit a transport
        error.  Confirm the hosting node is actually dead (one probe
        round — a transient or chaos-injected fault must not trigger a
        state-losing respawn), then respawn or mark lost.  Returns True
        when the grain was rebound and the call is worth retrying.
        """
        authority = grain.home_authority()
        if authority is None:
            return False
        om = self.cluster.home_node.om
        base_uri = next(
            (
                uri
                for uri in om.directory()
                if uri.split("://", 1)[-1] == authority
            ),
            None,
        )
        if base_uri is None:
            return False
        om.probe_peers()
        if base_uri not in om.dead_nodes():
            return False  # the node answered: transient failure, surface it
        return self._respawn_or_lose(grain, authority, raise_lost=True)

    def _handle_node_down(self, base_uri: str) -> None:
        """Proactive path: a failure detector declared *base_uri* dead."""
        authority = base_uri.split("://", 1)[-1]
        for grain in list(self._grains):
            if grain.home_authority() == authority:
                try:
                    self._respawn_or_lose(grain, authority, raise_lost=False)
                except ScooppError:
                    # Respawn placement failed (e.g. the cluster is going
                    # down); the grain stays pointed at the dead node and
                    # the next call surfaces the error.
                    pass

    def _respawn_or_lose(
        self, grain: RemoteGrain, dead_authority: str, raise_lost: bool
    ) -> bool:
        with self._respawn_lock:
            if grain.home_authority() != dead_authority:
                return True  # another detector already rebound it
            info = grain.spec[0] if grain.spec else None
            if not grain.restartable or grain.spec is None:
                class_name = info.wire_name if info else "a grain"
                error = NodeLostError(
                    f"node {dead_authority} hosting {class_name} died and "
                    f"the class is not restartable; declare "
                    f"@parallel(restartable=True) to opt into respawn"
                )
                grain.mark_lost(error)
                self._count("cluster.grain_lost")
                if raise_lost:
                    raise error
                return False
            info, args, kwargs = grain.spec
            impl = self._place_remote_impl(info, args, kwargs)
            grain.rebind(impl)
            self._count("cluster.grain_respawned")
            return True

    def _handle_migration(self, result: dict) -> None:
        """The scheduler moved a grain: repoint its tracking PO(s).

        Matching is by the victim's published URIs.  Best-effort on
        purpose — the forwarding shell left on the victim keeps
        un-repointed proxies working, so a failure here costs one extra
        hop, never a lost call.
        """
        old_uris = set(result.get("old_uris") or ())
        new_uris = tuple(result.get("new_uris") or ())
        if not old_uris or not new_uris:
            return
        new_ref = ObjRef(
            uris=new_uris,
            type_hint=result.get("class_name", ""),
            host_id=result.get("host_id") or "",
        )
        target: Any = None
        for grain in list(self._grains):
            ref = getattr(grain.impl, "_parc_objref", None)
            if ref is None or not old_uris.intersection(ref.uris):
                continue
            if target is None:
                host = self.cluster.home_node.host
                target = host.resolve_local(new_ref)
                if target is None:
                    target = host.make_proxy(new_ref)
            grain.repoint(target)
            self._count("cluster.grain_repointed")

    def _place_remote_impl(
        self, info: ParallelClassInfo, args: tuple, kwargs: dict
    ) -> Any:
        """Create a fresh IO for *info* on a live node (never agglomerates)."""
        from repro.errors import (
            ChannelError,
            RemoteInvocationError,
            RemotingError,
        )

        self._ensure_open()
        node = self._creating_node()
        last_error: Exception | None = None
        for _attempt in range(self.CREATE_ATTEMPTS):
            _decision, factory_uri = node.om.decide_and_place(info.wire_name)
            if factory_uri is None:
                # The grain policy said agglomerate, but a respawned IO
                # must stay remotely addressable: use the local factory.
                factory_uri = f"{node.base_uri}/factory"
            factory = node.make_proxy(factory_uri)
            token = current_host.set(node.host)
            try:
                return factory.create(info.wire_name, tuple(args), dict(kwargs))
            except RemoteInvocationError:
                raise
            except (ChannelError, RemotingError) as exc:
                last_error = exc
                node.om.note_dead(factory_uri.rsplit("/", 1)[0])
                continue
            finally:
                current_host.reset(token)
        raise ScooppError(
            f"could not respawn {info.wire_name} after "
            f"{self.CREATE_ATTEMPTS} attempts: {last_error}"
        ) from last_error

    def _count(self, name: str) -> None:
        metrics = getattr(self.cluster, "metrics", None)
        if metrics is not None:
            metrics.counter(name).inc()

    # -- reference support (PO passing, promotion) ------------------------

    def promote_grain(self, po: ProxyObject) -> RemoteGrain:
        """Convert a local (agglomerated) grain into a publishable one.

        Needed when a reference to an agglomerated PO is sent remotely:
        the instance is adopted by the creating node as a hosted IO and
        the PO switches to a remote grain in place.
        """
        grain = po._parc_grain
        if isinstance(grain, RemoteGrain):
            return grain
        node = self._creating_node()
        impl = ImplementationObject(
            grain.instance,
            grain.class_name,
            on_execution=node._on_execution,
            node=node,
        )
        node.adopt_impl(impl)
        node.host.objref_for(impl)  # publish now so the label is its path
        new_grain = RemoteGrain(impl, max_calls=1)
        self.adopt_grain(new_grain)
        po._parc_grain = new_grain
        return new_grain

    def quiesce_outboxes(self) -> None:
        """Deliver every tracked grain's buffered/posted calls.

        Flushes each adopted grain's aggregation buffer and waits until
        its sender thread has shipped everything (each call is in its
        IO's mailbox).  This covers POs held *inside* grain instances —
        decoded references are adopted too — so barriers like
        :meth:`repro.core.patterns.Pipeline.drain` can close the window
        where a forwarded call sits in an invisible outbox.  Best-effort:
        a grain mid-teardown or already lost is skipped.
        """
        for grain in list(self._grains):
            sync = getattr(grain, "sync_outbox", None)
            if sync is None:
                continue
            try:
                sync()
            except Exception:  # noqa: BLE001 - barrier is best-effort
                continue

    def objref_for_impl(self, impl: ImplementationObject) -> ObjRef:
        from repro.cluster.node import Node

        node = impl.node if isinstance(impl.node, Node) else self.cluster.home_node
        return node.host.objref_for(impl)

    def proxy_for_objref(self, ref: ObjRef) -> Any:
        """Resolve an IO reference: local shortcut or transparent proxy."""
        host = current_host.get()
        if host is None:
            host = self.cluster.home_node.host
        local = host.resolve_local(ref)
        if local is not None:
            return local
        holder = self._creator_label()
        self.dependence.record_reference(holder, _path_of(ref))
        return host.make_proxy(ref)

    # -- observability ----------------------------------------------------

    def _collect_telemetry(self) -> dict[str, dict[str, Any]]:
        collect = getattr(self.cluster, "collect_telemetry", None)
        if collect is None:  # pragma: no cover - exotic cluster stand-ins
            return {}
        return collect()

    def dump_trace(self, path: str | None = None) -> dict:
        """Merge every node's trace buffer into one Chrome-trace document.

        Each node becomes its own process lane (``pid``); span parentage
        recorded by the distributed trace context survives the merge, so
        a call fanning out over the cluster reads as one connected tree
        in ``chrome://tracing`` / Perfetto.  When *path* is given the
        document is also written there as JSON.  Call this **before**
        :func:`shutdown` — collection reaches worker processes over the
        wire.
        """
        from repro.telemetry import merge_chrome_trace

        telemetry = self._collect_telemetry()
        node_events = {
            label: data["events"] for label, data in telemetry.items()
        }
        dropped = sum(
            int(data.get("dropped", 0)) for data in telemetry.values()
        )
        document = merge_chrome_trace(node_events, dropped_events=dropped)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
        return document

    def metrics_snapshot(self) -> dict[str, Any]:
        """Cluster-wide metrics: per-node exports plus one aggregate.

        Returns ``{"nodes": {label: export}, "cluster": merged}`` where
        each export is a :meth:`MetricsRegistry.export` document and
        ``merged`` folds every node's counters and histograms together
        with the cluster-shared registry (breaker/chaos counters).
        """
        from repro.telemetry import merge_exports

        telemetry = self._collect_telemetry()
        nodes = {
            label: data["metrics"] for label, data in telemetry.items()
        }
        exports = list(nodes.values())
        shared = getattr(self.cluster, "metrics", None)
        if shared is not None:
            exports.append(shared.export())
        merged = merge_exports(exports)
        # PO aggregation counters, summed over the grains this runtime
        # tracks: how many aggregate messages left versus unbatched
        # singles (the split behind the historical batches_sent total).
        grains = list(self._grains)
        merged["po.batches"] = {
            "type": "counter",
            "value": sum(g.batches for g in grains),
            "help": "aggregate (processN) messages shipped by live POs",
        }
        merged["po.singles"] = {
            "type": "counter",
            "value": sum(g.singles for g in grains),
            "help": "single-call messages shipped by live POs",
        }
        merged["po.sheds"] = {
            "type": "counter",
            "value": sum(getattr(g, "sheds", 0) for g in grains),
            "help": "PO calls refused with OverloadError (flow control)",
        }
        return {"nodes": nodes, "cluster": merged}

    def placement_report(self) -> dict:
        """Where grains live and what the adaptive scheduler did.

        Delegates to :meth:`repro.cluster.cluster.Cluster.placement_report`:
        the active policy, per-node grain counts and backlogs, the
        steal/migration counters, and the most recent placement
        decisions.
        """
        self._ensure_open()
        return self.cluster.placement_report()

    def migrate_grain(self, grain_uri: str, target_base_uri: str) -> dict:
        """Explicitly live-migrate a published grain (see Cluster)."""
        self._ensure_open()
        return self.cluster.migrate_grain(grain_uri, target_base_uri)

    # -- lifecycle -------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise NotRunningError("runtime has been shut down")

    def stats(self) -> list[dict]:
        return self.cluster.stats()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.cluster.close()


# -- labelling helpers --------------------------------------------------------

from repro.core.impl import executing_impl as _executing_impl


def _impl_label(impl: ImplementationObject) -> str:
    path = getattr(impl, "_parc_path", None)
    home = getattr(impl, "_parc_home", None)
    if path and home is not None:
        # Auto-generated paths repeat across hosts; qualify with the host.
        return f"{home.host_id}/{path}"
    return f"impl:{id(impl):x}"


def _grain_label(grain: RemoteGrain) -> str:
    from repro.remoting.proxy import RemoteProxy

    if isinstance(grain.impl, RemoteProxy):
        return _path_of(grain.impl._parc_objref)
    return _impl_label(grain.impl)


def _path_of(ref: ObjRef) -> str:
    from repro.channels.services import parse_uri

    return f"{ref.host_id}/{parse_uri(ref.uris[0]).path}"


# -- module-level runtime management -----------------------------------------

_runtime_lock = threading.Lock()
_runtime: ParcRuntime | None = None


def init(
    config: ParcConfig | int | None = None, **kwargs: Any
) -> ParcRuntime:
    """Boot the runtime from a :class:`ParcConfig` (or legacy kwargs).

    Preferred form::

        parc.init(ParcConfig(nodes=4, channel="tcp"))

    Every historical keyword spelling still works —
    ``parc.init(nodes=4, channel="tcp", heartbeat_s=0.5, ...)`` — and a
    bare integer first argument is read as ``nodes`` (the old first
    positional).  Keyword options are folded into a config via
    :meth:`ParcConfig.from_kwargs`, which warns on unknown keys instead
    of raising.

    *channel* is ``"loopback"`` (in-process, deterministic), ``"tcp"``
    (real sockets), ``"aio"`` (multiplexed asyncio sockets), or a
    ``"chaos+*"`` variant routing every call through the fault-injection
    layer.  *grain* defaults to no adaptation (:class:`GrainPolicy` with
    ``max_calls=1``); pass an :class:`AdaptiveGrainController` for
    run-time grain packing.  *worker_processes* adds nodes running as
    separate OS processes over TCP; *heartbeat_s*, *breaker*,
    *chaos_plan* and *chaos_controller* are the self-healing knobs; a
    ``telemetry=TelemetryConfig(enabled=True)`` turns on distributed
    tracing and metrics.
    """
    global _runtime
    if isinstance(config, int):
        # Legacy positional: init(4) meant nodes=4.
        kwargs.setdefault("nodes", config)
        config = None
    if config is not None and kwargs:
        raise ScooppError(
            "pass either a ParcConfig or keyword options, not both"
        )
    if config is None:
        config = ParcConfig.from_kwargs(**kwargs)
    with _runtime_lock:
        if _runtime is not None and not _runtime._closed:
            raise ScooppError("runtime already initialized; call shutdown()")
        from repro.cluster.cluster import Cluster

        cluster = Cluster(
            num_nodes=config.nodes,
            channel_kind=config.channel,  # type: ignore[arg-type]
            scheduler=config.effective_scheduler(),
            dispatch_pool_size=config.dispatch_pool_size,
            worker_processes=config.worker_processes,
            worker_modules=config.worker_modules,
            heartbeat_s=config.heartbeat_s,
            breaker=config.breaker,
            chaos_plan=config.chaos_plan,
            chaos_controller=config.chaos_controller,
            telemetry=config.telemetry,
            wire_fastpath=config.wire_fastpath,
            sync_fastpath=config.sync_fastpath,
            same_node_transport=config.same_node_transport,
            mailbox_depth=config.mailbox_depth,
            priority=config.priority,
            shed_policy=config.shed_policy,
            elastic=config.elastic,
        )
        _runtime = ParcRuntime(cluster)
        return _runtime


@contextlib.contextmanager
def session(
    config: ParcConfig | int | None = None, **kwargs: Any
) -> Iterator[ParcRuntime]:
    """Run a block under a booted runtime, guaranteeing shutdown::

        with parc.session(ParcConfig(nodes=4, channel="tcp")) as runtime:
            server = parc.new(PrimeServer)
            ...
        # runtime is shut down here, even on error

    Accepts exactly what :func:`init` accepts.
    """
    runtime = init(config, **kwargs)
    try:
        yield runtime
    finally:
        shutdown()


def current_runtime() -> ParcRuntime:
    """The live runtime; raises NotRunningError before init/after shutdown."""
    runtime = _runtime
    if runtime is None or runtime._closed:
        raise NotRunningError(
            "ParC runtime is not initialized; call repro.core.init() first"
        )
    return runtime


def shutdown() -> None:
    """Stop the runtime and release all nodes (idempotent)."""
    global _runtime
    with _runtime_lock:
        runtime, _runtime = _runtime, None
    if runtime is not None:
        runtime.close()


def new(cls: type, *args: Any, **kwargs: Any) -> Any:
    """Create a parallel object: returns a PO for ``@parallel`` class *cls*.

    Equivalent to instantiating the generated PO class; the IO is created
    where the object manager places it (or locally under agglomeration).
    """
    parallel_class_table.by_class(cls)  # clear error if not @parallel
    po_class = make_parallel_class(cls)
    return po_class(*args, **kwargs)
