"""The runtime system entry points: init, shutdown, grain creation.

Typical use (the paper's programming model, in Python)::

    import repro.core as parc

    @parc.parallel
    class PrimeServer:
        def process(self, nums):          # async (no return value)
            ...
        def count(self):                  # sync (returns a value)
            return ...

    parc.init(nodes=4)
    try:
        server = parc.new(PrimeServer)    # PO; IO placed by the OM
        server.process([2, 3, 5])         # asynchronous, may be aggregated
        total = server.count()            # synchronous, flushes first
    finally:
        parc.shutdown()

``parc.new(Cls, ...)`` and instantiating a generated PO class are
equivalent; the preprocessor route produces modules where the original
class *name* already denotes the PO (paper §3.2: "the original parallel
object classes are replaced by generated PO classes").
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.depgraph import MAIN, DependenceTracker
from repro.core.grain import AdaptiveGrainController, GrainPolicy
from repro.core.impl import ImplementationObject, current_node
from repro.core.model import ParallelClassInfo, parallel_class_table
from repro.core.proxy_object import (
    LocalGrain,
    ProxyObject,
    RemoteGrain,
    make_parallel_class,
)
from repro.errors import NotRunningError, ScooppError
from repro.remoting.objref import ObjRef, current_host

# NOTE: repro.cluster modules import repro.core (grain, impl, model), so
# the cluster itself is imported lazily inside the functions that need it
# — a module-level import here would be circular when a worker process's
# first import is a repro.cluster module.

if False:  # pragma: no cover - static typing aid only
    from repro.cluster.cluster import Cluster  # noqa: F401
    from repro.cluster.node import Node  # noqa: F401


class ParcRuntime:
    """One live SCOOPP runtime over a cluster."""

    def __init__(self, cluster) -> None:  # type: ignore[no-untyped-def]
        self.cluster = cluster
        self.dependence = DependenceTracker()
        self._lock = threading.Lock()
        self._closed = False

    # -- grain creation ----------------------------------------------------

    def _creating_node(self):  # type: ignore[no-untyped-def]
        from repro.cluster.node import Node

        node = current_node.get()
        if node is not None and isinstance(node, Node):
            return node
        return self.cluster.home_node

    @staticmethod
    def _creator_label() -> str:
        node = current_node.get()
        if node is None:
            return MAIN
        impl = _executing_impl.get()
        if impl is None:
            return MAIN
        return _impl_label(impl)

    #: Placement attempts before giving up on creating an IO (a failed
    #: attempt marks the target node dead and re-places elsewhere).
    CREATE_ATTEMPTS = 3

    def create_grain(
        self, info: ParallelClassInfo, args: tuple, kwargs: dict
    ) -> Any:
        """Fig. 5's generated constructor body: decide, place, create.

        Node failures are absorbed: if the chosen node is unreachable it
        is recorded dead with the object manager and placement retries on
        the remaining nodes (up to :data:`CREATE_ATTEMPTS` times).
        """
        from repro.errors import (
            ChannelError,
            RemoteInvocationError,
            RemotingError,
        )

        self._ensure_open()
        node = self._creating_node()
        creator = self._creator_label()
        last_error: Exception | None = None
        for _attempt in range(self.CREATE_ATTEMPTS):
            decision, factory_uri = node.om.decide_and_place(info.wire_name)
            if factory_uri is None:
                # Object agglomeration: intra-grain creation (Fig. 3 call d).
                instance = info.cls(*args, **kwargs)
                grain = LocalGrain(instance, info.wire_name)
                self.dependence.record_creation(
                    creator, f"local:{grain.grain_id}"
                )
                return grain
            factory = node.make_proxy(factory_uri)
            token = current_host.set(node.host)
            try:
                impl = factory.create(
                    info.wire_name, tuple(args), dict(kwargs)
                )
            except RemoteInvocationError:
                # The node answered: this is an application failure (for
                # example the user constructor raised), not a dead node.
                raise
            except (ChannelError, RemotingError) as exc:
                last_error = exc
                base_uri = factory_uri.rsplit("/", 1)[0]
                node.om.note_dead(base_uri)
                continue
            finally:
                current_host.reset(token)
            grain = RemoteGrain(impl, max_calls=decision.max_calls)
            self.dependence.record_creation(creator, _grain_label(grain))
            return grain
        raise ScooppError(
            f"could not place {info.wire_name} after "
            f"{self.CREATE_ATTEMPTS} attempts: {last_error}"
        ) from last_error

    # -- reference support (PO passing, promotion) ------------------------

    def promote_grain(self, po: ProxyObject) -> RemoteGrain:
        """Convert a local (agglomerated) grain into a publishable one.

        Needed when a reference to an agglomerated PO is sent remotely:
        the instance is adopted by the creating node as a hosted IO and
        the PO switches to a remote grain in place.
        """
        grain = po._parc_grain
        if isinstance(grain, RemoteGrain):
            return grain
        node = self._creating_node()
        impl = ImplementationObject(
            grain.instance,
            grain.class_name,
            on_execution=node._on_execution,
            node=node,
        )
        node.adopt_impl(impl)
        node.host.objref_for(impl)  # publish now so the label is its path
        new_grain = RemoteGrain(impl, max_calls=1)
        po._parc_grain = new_grain
        return new_grain

    def objref_for_impl(self, impl: ImplementationObject) -> ObjRef:
        from repro.cluster.node import Node

        node = impl.node if isinstance(impl.node, Node) else self.cluster.home_node
        return node.host.objref_for(impl)

    def proxy_for_objref(self, ref: ObjRef) -> Any:
        """Resolve an IO reference: local shortcut or transparent proxy."""
        host = current_host.get()
        if host is None:
            host = self.cluster.home_node.host
        local = host.resolve_local(ref)
        if local is not None:
            return local
        holder = self._creator_label()
        self.dependence.record_reference(holder, _path_of(ref))
        return host.make_proxy(ref)

    # -- lifecycle -------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise NotRunningError("runtime has been shut down")

    def stats(self) -> list[dict]:
        return self.cluster.stats()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.cluster.close()


# -- labelling helpers --------------------------------------------------------

from repro.core.impl import executing_impl as _executing_impl


def _impl_label(impl: ImplementationObject) -> str:
    path = getattr(impl, "_parc_path", None)
    home = getattr(impl, "_parc_home", None)
    if path and home is not None:
        # Auto-generated paths repeat across hosts; qualify with the host.
        return f"{home.host_id}/{path}"
    return f"impl:{id(impl):x}"


def _grain_label(grain: RemoteGrain) -> str:
    from repro.remoting.proxy import RemoteProxy

    if isinstance(grain.impl, RemoteProxy):
        return _path_of(grain.impl._parc_objref)
    return _impl_label(grain.impl)


def _path_of(ref: ObjRef) -> str:
    from repro.channels.services import parse_uri

    return f"{ref.host_id}/{parse_uri(ref.uris[0]).path}"


# -- module-level runtime management -----------------------------------------

_runtime_lock = threading.Lock()
_runtime: ParcRuntime | None = None


def init(
    nodes: int = 4,
    channel: str = "loopback",
    grain: GrainPolicy | AdaptiveGrainController | None = None,
    placement: str = "round_robin",
    dispatch_pool_size: int = 16,
    worker_processes: int = 0,
    worker_modules: tuple[str, ...] = (),
) -> ParcRuntime:
    """Boot the runtime: *nodes* processing nodes, one OM+factory each.

    *channel* is ``"loopback"`` (in-process, deterministic) or ``"tcp"``
    (real sockets).  *grain* defaults to no adaptation
    (:class:`GrainPolicy` with ``max_calls=1``); pass an
    :class:`AdaptiveGrainController` for run-time grain packing.

    *worker_processes* adds nodes running as separate OS processes over
    TCP (true parallelism); they import *worker_modules* at boot so the
    application's ``@parallel`` classes are registered there.
    """
    global _runtime
    with _runtime_lock:
        if _runtime is not None and not _runtime._closed:
            raise ScooppError("runtime already initialized; call shutdown()")
        from repro.cluster.cluster import Cluster

        cluster = Cluster(
            num_nodes=nodes,
            channel_kind=channel,  # type: ignore[arg-type]
            grain=grain,
            placement=placement,
            dispatch_pool_size=dispatch_pool_size,
            worker_processes=worker_processes,
            worker_modules=worker_modules,
        )
        _runtime = ParcRuntime(cluster)
        return _runtime


def current_runtime() -> ParcRuntime:
    """The live runtime; raises NotRunningError before init/after shutdown."""
    runtime = _runtime
    if runtime is None or runtime._closed:
        raise NotRunningError(
            "ParC runtime is not initialized; call repro.core.init() first"
        )
    return runtime


def shutdown() -> None:
    """Stop the runtime and release all nodes (idempotent)."""
    global _runtime
    with _runtime_lock:
        runtime, _runtime = _runtime, None
    if runtime is not None:
        runtime.close()


def new(cls: type, *args: Any, **kwargs: Any) -> Any:
    """Create a parallel object: returns a PO for ``@parallel`` class *cls*.

    Equivalent to instantiating the generated PO class; the IO is created
    where the object manager places it (or locally under agglomeration).
    """
    parallel_class_table.by_class(cls)  # clear error if not @parallel
    po_class = make_parallel_class(cls)
    return po_class(*args, **kwargs)
