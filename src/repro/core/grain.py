"""Grain-size policies: when to aggregate calls and agglomerate objects.

§3.1: "SCOOPP removes parallelism overheads at run-time by transforming
(packing) parallel objects in passive ones and by aggregating method
calls."  Two controls exist:

* **method-call aggregation** — ``max_calls`` asynchronous invocations are
  combined into one aggregate message, reducing per-message latency;
* **object agglomeration** — a newly created parallel object is created
  locally (as a passive object) so its calls run synchronously/serially.

:class:`GrainPolicy` is the static form (fixed knobs).
:class:`AdaptiveGrainController` is the dynamic form from the paper's
run-time grain packing reference [9]: it compares the observed average
method execution time of a class against the measured remote-call
overhead and packs until a batch amortizes the overhead.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from repro.errors import GrainError


@dataclass(frozen=True)
class GrainDecision:
    """What a PO should do, decided at PO construction (paper Fig. 5)."""

    agglomerate: bool
    max_calls: int

    def __post_init__(self) -> None:
        if self.max_calls < 1:
            raise GrainError(f"max_calls must be >= 1, got {self.max_calls}")

    def trace_args(self) -> dict:
        """Flat JSON-safe view for the ``grain.decide`` trace instant."""
        return {"agglomerate": self.agglomerate, "max_calls": self.max_calls}


@dataclass(frozen=True)
class GrainPolicy:
    """Static grain configuration.

    ``max_calls=1`` disables aggregation (every async call is its own
    message); ``agglomerate=True`` removes all parallelism (every object
    local) — the two endpoints the ablation benchmarks sweep between.
    """

    agglomerate: bool = False
    max_calls: int = 1

    def __post_init__(self) -> None:
        if self.max_calls < 1:
            raise GrainError(f"max_calls must be >= 1, got {self.max_calls}")

    def decide(self, class_name: str) -> GrainDecision:
        return GrainDecision(
            agglomerate=self.agglomerate, max_calls=self.max_calls
        )


@dataclass
class _ClassStats:
    """EWMA of one class's method execution time (seconds)."""

    avg_exec_s: float = 0.0
    samples: int = 0
    # Measured wire cost: EWMA of serialized bytes per aggregated call,
    # fed by the PO sender (0.0 until a send has been observed).
    avg_call_bytes: float = 0.0
    byte_samples: int = 0

    def observe(self, exec_s: float, alpha: float) -> None:
        if self.samples == 0:
            self.avg_exec_s = exec_s
        else:
            self.avg_exec_s = alpha * exec_s + (1.0 - alpha) * self.avg_exec_s
        self.samples += 1

    def observe_bytes(self, call_bytes: float, alpha: float) -> None:
        if self.byte_samples == 0:
            self.avg_call_bytes = call_bytes
        else:
            self.avg_call_bytes = (
                alpha * call_bytes + (1.0 - alpha) * self.avg_call_bytes
            )
        self.byte_samples += 1


@dataclass
class AdaptiveGrainController:
    """Run-time grain packing (the paper's reference [9]).

    Decision rules, per class:

    * **aggregation**: pack enough calls that a batch's total work is
      ``pack_factor`` × the per-message overhead:
      ``max_calls = ceil(pack_factor * overhead_s / avg_exec_s)``,
      clamped to ``[1, max_calls_cap]``;
    * **agglomeration**: if even a full batch cannot amortize the overhead
      (``avg_exec_s * max_calls_cap < agglomerate_factor * overhead_s``),
      remove the parallelism entirely and create the object locally.

    Until ``min_samples`` executions of a class have been observed the
    controller stays conservative: no agglomeration, mild aggregation
    (``bootstrap_max_calls``) — the paper's RTS likewise starts parallel
    and packs as evidence accumulates.

    When ``wire_bandwidth_Bps`` is set *and* the PO sender has reported
    serialized sizes (:meth:`observe_call_bytes`), the per-call wire time
    ``avg_call_bytes / wire_bandwidth_Bps`` joins the execution time in
    the packing formula: heavy arguments amortize the per-message
    overhead by themselves, so fewer calls are packed.  With the
    bandwidth unset (the default) decisions are byte-blind and exactly
    match the historical formula.
    """

    overhead_s: float = 500e-6
    pack_factor: float = 4.0
    agglomerate_factor: float = 0.25
    max_calls_cap: int = 128
    min_samples: int = 8
    bootstrap_max_calls: int = 4
    ewma_alpha: float = 0.25
    #: Assumed wire bandwidth in bytes/second; ``None`` disables the
    #: measured-bytes term in :meth:`decide`.
    wire_bandwidth_Bps: float | None = None

    #: Clamp bounds for the autotuned ``flush_after_s``: a partial batch
    #: may wait at most ``flush_cap_s`` and the timer never arms tighter
    #: than ``flush_floor_s`` (sub-half-millisecond timers cost more in
    #: wakeups than they save in latency).
    flush_floor_s: float = 0.0005
    flush_cap_s: float = 0.02

    def __post_init__(self) -> None:
        if self.overhead_s <= 0:
            raise GrainError("overhead_s must be positive")
        if self.max_calls_cap < 1:
            raise GrainError("max_calls_cap must be >= 1")
        self._lock = threading.Lock()
        self._stats: dict[str, _ClassStats] = {}
        self._method_stats: dict[tuple[str, str], _ClassStats] = {}

    def observe_execution(
        self, class_name: str, exec_s: float, method: str | None = None
    ) -> None:
        """Feed one measured method execution time back to the controller.

        With *method* given (the IO worker passes it since the reply-path
        rework) the sample additionally lands in a per-(class, method)
        EWMA, the input of :meth:`decide_method`'s online retuning.
        """
        if exec_s < 0:
            raise GrainError(f"negative execution time {exec_s}")
        with self._lock:
            stats = self._stats.setdefault(class_name, _ClassStats())
            stats.observe(exec_s, self.ewma_alpha)
            if method:
                per_method = self._method_stats.setdefault(
                    (class_name, method), _ClassStats()
                )
                per_method.observe(exec_s, self.ewma_alpha)

    def observe_call_bytes(
        self, class_name: str, total_bytes: int, calls: int
    ) -> None:
        """Feed one send's serialized size back (request bytes, calls).

        Called by the PO sender after each successful ship; the per-call
        figure (``total_bytes / calls``) enters a separate EWMA so batch
        and single sends weigh equally per call.
        """
        if calls <= 0 or total_bytes < 0:
            return
        with self._lock:
            stats = self._stats.setdefault(class_name, _ClassStats())
            stats.observe_bytes(total_bytes / calls, self.ewma_alpha)

    def stats_for(self, class_name: str) -> tuple[float, int]:
        """(avg execution seconds, sample count) for *class_name*."""
        with self._lock:
            stats = self._stats.get(class_name)
            if stats is None:
                return 0.0, 0
            return stats.avg_exec_s, stats.samples

    def call_bytes_for(self, class_name: str) -> tuple[float, int]:
        """(avg serialized bytes per call, sample count) for *class_name*."""
        with self._lock:
            stats = self._stats.get(class_name)
            if stats is None:
                return 0.0, 0
            return stats.avg_call_bytes, stats.byte_samples

    def merge_remote_stats(
        self, class_name: str, avg_exec_s: float, samples: int
    ) -> None:
        """Fold a peer node's observations in (OM load/stat exchange)."""
        if samples <= 0:
            return
        with self._lock:
            stats = self._stats.setdefault(class_name, _ClassStats())
            if stats.samples == 0:
                stats.avg_exec_s = avg_exec_s
                stats.samples = samples
            else:
                total = stats.samples + samples
                stats.avg_exec_s = (
                    stats.avg_exec_s * stats.samples + avg_exec_s * samples
                ) / total
                stats.samples = total

    def method_stats_for(
        self, class_name: str, method: str
    ) -> tuple[float, int]:
        """(avg execution seconds, samples) for one (class, method)."""
        with self._lock:
            stats = self._method_stats.get((class_name, method))
            if stats is None:
                return 0.0, 0
            return stats.avg_exec_s, stats.samples

    def merge_remote_method_stats(
        self, class_name: str, method: str, avg_exec_s: float, samples: int
    ) -> None:
        """Fold a peer's per-method summary in (histogram exchange).

        Peers publish ``parc.method.seconds.*`` histogram summaries in
        their load reports; the object manager feeds them here so the
        autotuner prices a method from cluster-wide evidence, not just
        local executions.
        """
        if samples <= 0 or avg_exec_s <= 0:
            return
        with self._lock:
            stats = self._method_stats.setdefault(
                (class_name, method), _ClassStats()
            )
            if stats.samples == 0:
                stats.avg_exec_s = avg_exec_s
                stats.samples = samples
            else:
                total = stats.samples + samples
                stats.avg_exec_s = (
                    stats.avg_exec_s * stats.samples + avg_exec_s * samples
                ) / total
                stats.samples = total

    def _per_call_s(self, class_name: str, avg_exec_s: float) -> float:
        # Per-call cost that amortizes the per-message overhead: execution
        # time plus (when measured and a bandwidth is configured) the time
        # the call's serialized bytes occupy the wire.
        per_call_s = avg_exec_s
        if self.wire_bandwidth_Bps:
            avg_bytes, byte_samples = self.call_bytes_for(class_name)
            if byte_samples > 0:
                per_call_s += avg_bytes / self.wire_bandwidth_Bps
        return per_call_s

    def decide(self, class_name: str) -> GrainDecision:
        avg_exec_s, samples = self.stats_for(class_name)
        if samples < self.min_samples or avg_exec_s <= 0:
            return GrainDecision(
                agglomerate=False,
                max_calls=min(self.bootstrap_max_calls, self.max_calls_cap),
            )
        per_call_s = self._per_call_s(class_name, avg_exec_s)
        max_calls = math.ceil(self.pack_factor * self.overhead_s / per_call_s)
        max_calls = max(1, min(max_calls, self.max_calls_cap))
        agglomerate = (
            avg_exec_s * self.max_calls_cap
            < self.agglomerate_factor * self.overhead_s
        )
        return GrainDecision(agglomerate=agglomerate, max_calls=max_calls)

    def decide_method(
        self, class_name: str, method: str
    ) -> tuple[int, float] | None:
        """Per-method online tuning: ``(max_calls, flush_after_s)``.

        The telemetry-fed half of the feedback loop: executions recorded
        with a method name (the ``parc.method.seconds.<Class>.<method>``
        histogram's twin stream) drive a per-method packing decision with
        the same amortization formula as :meth:`decide`, plus a flush
        deadline sized to the batch itself — a batch worth of work is
        exactly how long a partial buffer is allowed to wait, clamped to
        ``[flush_floor_s, flush_cap_s]``.

        Returns ``None`` until ``min_samples`` method executions exist,
        so a fresh method keeps its class-level (or static) tuning.
        """
        avg_exec_s, samples = self.method_stats_for(class_name, method)
        if samples < self.min_samples or avg_exec_s <= 0:
            return None
        per_call_s = self._per_call_s(class_name, avg_exec_s)
        max_calls = math.ceil(self.pack_factor * self.overhead_s / per_call_s)
        max_calls = max(1, min(max_calls, self.max_calls_cap))
        flush_after_s = min(
            max(max_calls * per_call_s, self.flush_floor_s), self.flush_cap_s
        )
        return max_calls, flush_after_s
