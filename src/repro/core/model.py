"""Parallel-class declarations and async/sync method classification.

§3.1: parallel objects "communicate through either asynchronous (when no
value is returned) or synchronous method calls (when a value is
returned)".  The classifier decides, per method, which kind it is:

1. an explicit override passed to ``@parallel(async_methods=...,
   sync_methods=...)`` always wins;
2. a ``-> None`` return annotation (or any other annotation) decides;
3. otherwise the method's **source is analysed with ``ast``**: a method
   whose body never executes ``return <expr>`` (or ``yield``) returns no
   value and is classified asynchronous — this is the preprocessor's
   analysis from §3.2 ("the pre-processor analyses the application -
   retrieving information about the declared parallel objects").

Classified classes are recorded in the process-wide
:data:`parallel_class_table` so node factories can instantiate them by
wire name, and registered with the serialization registry so instances
(passive copies) could cross the wire if the user chooses.
"""

from __future__ import annotations

import ast
import enum
import inspect
import textwrap
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, TypeVar

from repro.errors import PreprocessError, ScooppError

T = TypeVar("T", bound=type)


class MethodKind(enum.Enum):
    """How a parallel-object method is invoked through its PO."""

    ASYNC = "async"  # no return value: buffered/aggregated, fire-and-forget
    SYNC = "sync"  # returns a value: flushes pending work, round trip


@dataclass
class ParallelClassInfo:
    """Everything the runtime knows about one ``@parallel`` class."""

    cls: type
    wire_name: str
    method_kinds: dict[str, MethodKind] = field(default_factory=dict)
    #: Whether instances may be re-created on a surviving node when their
    #: host dies.  Respawn re-runs the constructor: in-object state built
    #: up since creation is lost, so the class must opt in.
    restartable: bool = False

    @property
    def async_methods(self) -> list[str]:
        return sorted(
            name
            for name, kind in self.method_kinds.items()
            if kind is MethodKind.ASYNC
        )

    @property
    def sync_methods(self) -> list[str]:
        return sorted(
            name
            for name, kind in self.method_kinds.items()
            if kind is MethodKind.SYNC
        )


class ParallelClassTable:
    """Thread-safe registry of declared parallel classes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_name: dict[str, ParallelClassInfo] = {}
        self._by_class: dict[type, ParallelClassInfo] = {}

    def add(self, info: ParallelClassInfo) -> None:
        with self._lock:
            existing = self._by_name.get(info.wire_name)
            if existing is not None and existing.cls is not info.cls:
                raise ScooppError(
                    f"parallel class name {info.wire_name!r} already maps "
                    f"to {existing.cls.__qualname__}"
                )
            self._by_name[info.wire_name] = info
            self._by_class[info.cls] = info

    def by_name(self, wire_name: str) -> ParallelClassInfo:
        with self._lock:
            info = self._by_name.get(wire_name)
        if info is None:
            raise ScooppError(
                f"no parallel class registered as {wire_name!r}; decorate "
                f"it with @parallel (and import its module on every node)"
            )
        return info

    def by_class(self, cls: type) -> ParallelClassInfo:
        with self._lock:
            info = self._by_class.get(cls)
        if info is None:
            raise ScooppError(
                f"{cls.__qualname__} is not a parallel class; decorate it "
                f"with @parallel"
            )
        return info

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._by_name)


#: Process-wide table consulted by node factories.
parallel_class_table = ParallelClassTable()


def ast_function_returns_value(
    function_node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    """Does this function's body ever return a value (or yield)?

    Nested function/lambda bodies are skipped: their returns are not the
    method's.  Shared by the runtime classifier and the source
    preprocessor, so both always agree.
    """

    class ReturnFinder(ast.NodeVisitor):
        found = False

        def visit_Return(self, node: ast.Return) -> None:
            if node.value is not None and not (
                isinstance(node.value, ast.Constant) and node.value.value is None
            ):
                self.found = True

        def visit_Yield(self, node: ast.Yield) -> None:
            self.found = True

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            self.found = True

        # Do not descend into nested callables.
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is not function_node:
                return
            self.generic_visit(node)

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            if node is not function_node:
                return
            self.generic_visit(node)

        def visit_Lambda(self, node: ast.Lambda) -> None:
            return

    finder = ReturnFinder()
    finder.visit(function_node)
    return finder.found


def _returns_value(func: Callable[..., Any]) -> bool | None:
    """AST check on *func*'s source; None when source is unavailable."""
    try:
        source = textwrap.dedent(inspect.getsource(func))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ast_function_returns_value(node)
    return None


def classify_method(func: Callable[..., Any]) -> MethodKind:
    """Classify one method by annotation, then AST, then the safe default."""
    annotation = getattr(func, "__annotations__", {}).get("return", _MISSING)
    if isinstance(annotation, str):
        # `from __future__ import annotations` stringifies annotations
        # (and quotes string literals); normalise before comparing.
        annotation = annotation.strip("'\"")
    if annotation is None or annotation == "None":
        return MethodKind.ASYNC
    if annotation is not _MISSING:
        return MethodKind.SYNC
    returns = _returns_value(func)
    if returns is None:
        return MethodKind.SYNC
    return MethodKind.SYNC if returns else MethodKind.ASYNC


_MISSING = object()


def public_methods(cls: type) -> list[str]:
    """Public callables defined on *cls* (not inherited from object)."""
    names = []
    for name in dir(cls):
        if name.startswith("_"):
            continue
        member = inspect.getattr_static(cls, name, None)
        if isinstance(member, (staticmethod, classmethod)):
            continue
        if callable(getattr(cls, name, None)):
            names.append(name)
    return sorted(names)


def infer_method_kinds(
    cls: type,
    async_methods: Iterable[str] = (),
    sync_methods: Iterable[str] = (),
) -> dict[str, MethodKind]:
    """Classify every public method of *cls*, honouring overrides."""
    forced_async = set(async_methods)
    forced_sync = set(sync_methods)
    overlap = forced_async & forced_sync
    if overlap:
        raise PreprocessError(
            f"methods {sorted(overlap)} declared both async and sync"
        )
    names = public_methods(cls)
    unknown = (forced_async | forced_sync) - set(names)
    if unknown:
        raise PreprocessError(
            f"@parallel overrides name missing methods {sorted(unknown)} "
            f"on {cls.__qualname__}"
        )
    kinds: dict[str, MethodKind] = {}
    for name in names:
        if name in forced_async:
            kinds[name] = MethodKind.ASYNC
        elif name in forced_sync:
            kinds[name] = MethodKind.SYNC
        else:
            kinds[name] = classify_method(getattr(cls, name))
    return kinds


def parallel(
    cls: T | None = None,
    *,
    name: str | None = None,
    async_methods: Iterable[str] = (),
    sync_methods: Iterable[str] = (),
    restartable: bool = False,
) -> T | Callable[[T], T]:
    """Declare a class as a parallel (active) object class.

    The decorated class itself is untouched — it is the implementation
    object (IO).  The PO class is produced either by the source
    preprocessor (:func:`repro.core.preprocess.preprocess_source`) or at
    runtime by :func:`repro.core.proxy_object.make_parallel_class` /
    :func:`repro.core.runtime.new`.

    ``restartable=True`` opts the class into crash recovery: when the
    node hosting an instance dies, the runtime re-creates it (re-running
    the constructor with the original arguments) on a surviving node and
    repoints live proxies.  Classes that do not opt in surface
    :class:`~repro.errors.NodeLostError` instead.

    Example (the paper's running example, Fig. 4)::

        @parallel
        class PrimeServer(PrimeFilter):
            def process(self, num):     # no return value -> asynchronous
                ...
    """

    def decorate(klass: T) -> T:
        wire_name = name or f"{klass.__module__}.{klass.__qualname__}"
        info = ParallelClassInfo(
            cls=klass,
            wire_name=wire_name,
            method_kinds=infer_method_kinds(klass, async_methods, sync_methods),
            restartable=restartable,
        )
        parallel_class_table.add(info)
        klass._parc_parallel_info = info
        return klass

    if cls is None:
        return decorate
    return decorate(cls)
