"""Runtime configuration: one typed object instead of eleven kwargs.

:class:`ParcConfig` gathers every knob :func:`repro.core.init` grew over
time — cluster shape, transport, grain policy, self-healing, fault
injection, telemetry — into a single declarative value that can be
built once, passed around, and handed to :func:`repro.core.session`::

    import repro.core as parc
    from repro.core import ParcConfig
    from repro.telemetry import TelemetryConfig

    config = ParcConfig(
        nodes=4,
        channel="tcp",
        telemetry=TelemetryConfig(enabled=True),
    )
    with parc.session(config) as runtime:
        ...

``parc.init(**kwargs)`` still accepts the historical keyword arguments;
it builds a :class:`ParcConfig` via :meth:`ParcConfig.from_kwargs` and
warns about keys it does not recognize.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields
from typing import Any

from repro.core.grain import AdaptiveGrainController, GrainPolicy
from repro.errors import ScooppError
from repro.sched import SchedulerConfig
from repro.telemetry import TelemetryConfig

#: The flat scheduling fields are deprecated spellings of
#: ``scheduler=SchedulerConfig(...)``; warn once per process, not once
#: per Cluster, so test suites that boot hundreds of runtimes stay
#: readable.
_warned_flat_scheduling = False


@dataclass
class ParcConfig:
    """Declarative runtime configuration (see module docstring).

    Field names intentionally match the keyword arguments of the
    historical :func:`repro.core.init` signature, so
    ``ParcConfig(**old_kwargs)`` and ``init(**old_kwargs)`` accept the
    same spellings.
    """

    #: Number of in-process nodes (each gets an OM + factory).
    nodes: int = 4
    #: Channel kind string, resolved by :func:`repro.channels.create`
    #: (``"loopback"``, ``"tcp"``, ``"aio"``, or a ``"chaos+*"`` variant).
    channel: str = "loopback"
    #: Grain policy: static knobs or the adaptive controller.
    #: Deprecated spelling of ``scheduler=SchedulerConfig(grain=...)``.
    grain: GrainPolicy | AdaptiveGrainController | None = None
    #: Placement policy name (``"round_robin"``, ``"least_loaded"``, ...).
    #: Deprecated spelling of ``scheduler=SchedulerConfig(placement=...)``.
    placement: str = "round_robin"
    #: Threads per node serving one-way dispatches.
    dispatch_pool_size: int = 16
    #: Extra nodes as separate OS processes over TCP.
    worker_processes: int = 0
    #: Modules each worker process imports at boot (class registration).
    worker_modules: tuple[str, ...] = ()
    #: Failure-detector period in seconds; ``None`` disables heartbeats.
    heartbeat_s: float | None = None
    #: Per-authority circuit-breaker policy
    #: (:class:`~repro.channels.breaker.BreakerPolicy`), or ``None``.
    breaker: Any = None
    #: Scripted fault plan for ``chaos+*`` channels.
    chaos_plan: Any = None
    #: Runtime fault controller for ``chaos+*`` channels.
    chaos_controller: Any = None
    #: Zero-copy wire fast path: compiled codecs + pooled buffers on the
    #: socket transports and columnar ``processN`` aggregates.  ``False``
    #: selects the legacy copy-per-stage path (same wire format — the two
    #: interoperate, so mixed clusters are fine).
    wire_fastpath: bool = True
    #: Synchronous-call fast path: a sync call (or sync ``call_many``
    #: batch) whose target mailbox is idle executes inline on the
    #: caller's thread, skipping the serialize→frame→mailbox round-trip.
    #: FIFO semantics are preserved (the mailbox is claimed only when
    #: empty and the worker parks while an inline call runs).  ``False``
    #: restores the always-queue behaviour.
    sync_fastpath: bool = True
    #: Same-node transport negotiation: ``"shm"`` routes calls between
    #: co-located processes through shared-memory ring buffers
    #: (:mod:`repro.shm`) while remote peers stay on the socket channel;
    #: ``None`` (default) keeps everything on the wire.
    same_node_transport: str | None = None
    #: Distributed tracing and metrics (disabled by default).
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    #: Bound on each IO mailbox priority lane, in queued calls; 0 keeps
    #: the paper's unbounded FIFO.  A full lane sheds new calls with
    #: :class:`~repro.errors.OverloadError` (see :mod:`repro.flow`).
    mailbox_depth: int = 0
    #: Method-name → lane mapping (``"high"``/``"normal"``/``"low"``);
    #: keys may be bare method names or ``Class.method``.  Mailboxes
    #: drain high before normal before low, FIFO within a lane.
    priority: dict | None = None
    #: What a bounded mailbox does with excess work: ``"fail_fast"``
    #: (default) or ``"deadline:<seconds>"`` — see
    #: :class:`repro.flow.ShedPolicy`.
    shed_policy: str | None = None
    #: ``(min, max)`` worker-process bounds for elastic scaling; ``None``
    #: keeps the worker count fixed.  Requires ``worker_processes >= 1``
    #: (the initial count, clamped into the bounds); retirement announces
    #: the node down so restartable grains respawn on survivors.
    elastic: tuple | None = None
    #: All scheduling knobs in one place: grain policy, placement policy
    #: (name or :class:`~repro.cluster.placement.PlacementPolicy`
    #: instance), work stealing, live migration and the rebalance-loop
    #: tuning (see :class:`~repro.sched.SchedulerConfig`).  Subsumes the
    #: flat ``grain``/``placement`` fields above: setting a flat field
    #: *and* its scheduler counterpart to different values is an error.
    scheduler: SchedulerConfig | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ScooppError(f"nodes must be >= 1, got {self.nodes}")
        if self.worker_processes < 0:
            raise ScooppError("worker_processes cannot be negative")
        self.worker_modules = tuple(self.worker_modules)
        if self.same_node_transport not in (None, "shm"):
            raise ScooppError(
                "same_node_transport must be None or 'shm', got "
                f"{self.same_node_transport!r}"
            )
        if not isinstance(self.telemetry, TelemetryConfig):
            raise ScooppError(
                "telemetry must be a TelemetryConfig, got "
                f"{type(self.telemetry).__qualname__}"
            )
        if self.mailbox_depth < 0:
            raise ScooppError("mailbox_depth cannot be negative")
        if self.priority is not None:
            bad = sorted(
                lane
                for lane in set(self.priority.values())
                if lane not in ("high", "normal", "low")
            )
            if bad:
                raise ScooppError(
                    f"priority lanes must be high/normal/low, got {bad}"
                )
        if self.shed_policy is not None:
            from repro.flow.policy import ShedPolicy

            try:
                ShedPolicy.parse(self.shed_policy)
            except ValueError as exc:
                raise ScooppError(str(exc)) from exc
        if self.elastic is not None:
            self.elastic = tuple(self.elastic)
            if (
                len(self.elastic) != 2
                or not all(isinstance(n, int) for n in self.elastic)
            ):
                raise ScooppError(
                    f"elastic must be a (min, max) int pair, got "
                    f"{self.elastic!r}"
                )
            low, high = self.elastic
            if low < 1 or high < low:
                raise ScooppError(
                    f"elastic bounds need 1 <= min <= max, got {self.elastic}"
                )
            if self.worker_processes < 1:
                raise ScooppError(
                    "elastic scaling needs worker_processes >= 1 "
                    "(the initial worker count)"
                )
        if self.scheduler is not None and not isinstance(
            self.scheduler, SchedulerConfig
        ):
            raise ScooppError(
                "scheduler must be a SchedulerConfig, got "
                f"{type(self.scheduler).__qualname__}"
            )
        flat_used = self.grain is not None or self.placement != "round_robin"
        if self.scheduler is not None:
            if (
                self.grain is not None
                and self.scheduler.grain is not None
                and self.grain is not self.scheduler.grain
            ):
                raise ScooppError(
                    "grain given both flat and via scheduler=SchedulerConfig"
                )
            if (
                self.placement != "round_robin"
                and self.scheduler.placement != "round_robin"
                and self.placement != self.scheduler.placement
            ):
                raise ScooppError(
                    "placement given both flat and via "
                    "scheduler=SchedulerConfig"
                )
        elif flat_used:
            global _warned_flat_scheduling
            if not _warned_flat_scheduling:
                _warned_flat_scheduling = True
                warnings.warn(
                    "flat grain=/placement= runtime options are deprecated; "
                    "pass scheduler=SchedulerConfig(grain=..., "
                    "placement=...) instead",
                    DeprecationWarning,
                    stacklevel=3,
                )

    def effective_scheduler(self) -> SchedulerConfig:
        """The scheduler config with any flat fields folded in.

        This is what actually reaches the cluster: ``scheduler`` as
        given, with a flat ``grain``/``placement`` filling a counterpart
        the scheduler left at its default (conflicts were already
        rejected by ``__post_init__``).
        """
        from dataclasses import replace

        if self.scheduler is None:
            return SchedulerConfig(grain=self.grain, placement=self.placement)
        updates: dict[str, Any] = {}
        if self.scheduler.grain is None and self.grain is not None:
            updates["grain"] = self.grain
        if (
            self.scheduler.placement == "round_robin"
            and self.placement != "round_robin"
        ):
            updates["placement"] = self.placement
        return replace(self.scheduler, **updates) if updates else self.scheduler

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "ParcConfig":
        """Build a config from legacy ``init(...)``-style kwargs.

        Unknown keys are dropped with a :class:`UserWarning` (they were
        silently fatal ``TypeError``\\ s before; a warning keeps old
        scripts running while flagging the typo).
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            warnings.warn(
                f"ignoring unknown runtime option(s): {', '.join(unknown)}",
                UserWarning,
                stacklevel=3,
            )
        return cls(**{k: v for k, v in kwargs.items() if k in known})
