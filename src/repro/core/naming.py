"""Cluster-wide naming of parallel objects.

The RMI/remoting layers resolve objects by registered names; SCOOPP code
frequently wants the same for *parallel objects* — a coordinator PO that
every node's grains can find.  This module provides it:

* the **name service** is a plain :class:`MarshalByRefObject` published
  at a well-known path on the home node, so every node reaches it through
  ordinary remoting;
* values are PO references — the
  :class:`~repro.core.proxy_object.ProxyObjectSurrogate` carries them, so
  ``lookup`` returns a PO wired to the *original* implementation object
  wherever it lives (and binding an agglomerated PO promotes it, exactly
  like passing it as an argument).

Usage::

    parc.bind("dispatcher", dispatcher_po)
    ...
    # anywhere in the cluster, including inside parallel methods:
    dispatcher = parc.lookup("dispatcher")
    dispatcher.submit(task)
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.proxy_object import ProxyObject
from repro.core.runtime import current_runtime
from repro.errors import ScooppError
from repro.remoting import MarshalByRefObject

#: Well-known path of the name service on the home node's host.
NAME_SERVICE_PATH = "parc-names"


class NameService(MarshalByRefObject):
    """Name → PO-reference table (served from the home node)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._bindings: dict[str, Any] = {}

    def bind(self, name: str, po: Any) -> None:
        with self._lock:
            if name in self._bindings:
                raise ScooppError(f"name {name!r} is already bound")
            self._bindings[name] = po

    def rebind(self, name: str, po: Any) -> None:
        with self._lock:
            self._bindings[name] = po

    def unbind(self, name: str) -> None:
        with self._lock:
            if name not in self._bindings:
                raise ScooppError(f"name {name!r} is not bound")
            del self._bindings[name]

    def lookup(self, name: str) -> Any:
        with self._lock:
            po = self._bindings.get(name)
        if po is None:
            raise ScooppError(f"name {name!r} is not bound")
        return po

    def names(self) -> list:
        with self._lock:
            return sorted(self._bindings)


def _service_proxy():  # type: ignore[no-untyped-def]
    """The name service for the current runtime (created on first use)."""
    runtime = current_runtime()
    home = runtime.cluster.home_node
    if NAME_SERVICE_PATH not in home.host.published_paths():
        try:
            home.host.publish(NameService(), NAME_SERVICE_PATH)
        except Exception:  # noqa: BLE001 - lost a benign publish race
            pass
    uri = f"{home.base_uri}/{NAME_SERVICE_PATH}"
    node = runtime._creating_node()
    return node.make_proxy(uri)


def _check_po(po: Any) -> None:
    if not isinstance(po, ProxyObject):
        raise ScooppError(
            f"only parallel objects (POs) can be bound, got "
            f"{type(po).__qualname__}"
        )


def bind(name: str, po: Any) -> None:
    """Bind *name* to a parallel object; error if already bound."""
    _check_po(po)
    _service_proxy().bind(name, po)


def rebind(name: str, po: Any) -> None:
    """Bind *name*, replacing any existing binding."""
    _check_po(po)
    _service_proxy().rebind(name, po)


def unbind(name: str) -> None:
    """Remove a binding; error if absent."""
    _service_proxy().unbind(name)


def lookup(name: str) -> Any:
    """Resolve *name* to a PO wired to the original implementation."""
    return _service_proxy().lookup(name)


def names() -> list[str]:
    """All bound names, sorted."""
    return list(_service_proxy().names())
