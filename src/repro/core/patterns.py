"""Algorithmic skeletons over parallel objects: Farm and Pipeline.

The paper's related work (§1, [7]) points at "implementation of higher
level programming paradigms" on these platforms; this module provides the
two skeletons every SCOOPP application in this repository hand-rolls —
as reusable, tested API:

* :class:`Farm` — N identical workers; scatter asynchronous work, map
  synchronous work with overlap (delegates), broadcast, collect.
* :class:`Pipeline` — a chain of stages connected by PO references; feed
  items at the head, drain at the tail.

Both own their POs and release them on ``close()`` / ``with``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.runtime import new
from repro.errors import ScooppError
from repro.remoting.delegates import Delegate


class Farm:
    """A pool of identical parallel objects with scatter/map/collect.

    ::

        with Farm(PrimeServer, workers=4) as farm:
            farm.scatter("process", chunks)        # async, round-robin
            total = sum(farm.collect("count"))     # sync, one per worker
    """

    def __init__(self, cls: type, workers: int, *args: Any, **kwargs: Any) -> None:
        if workers < 1:
            raise ScooppError(f"farm needs >= 1 worker, got {workers}")
        self.workers = [new(cls, *args, **kwargs) for _ in range(workers)]
        self._next = 0
        self._closed = False

    # -- distribution --------------------------------------------------------

    def scatter(self, method: str, items: Iterable[Any]) -> int:
        """One asynchronous ``method(item)`` per item, round-robin.

        Returns the number of items dispatched.  Items are positional
        single arguments; pass tuples and unpack in the worker for more.
        """
        self._ensure_open()
        count = 0
        for item in items:
            worker = self.workers[self._next % len(self.workers)]
            getattr(worker, method)(item)
            self._next += 1
            count += 1
        return count

    def broadcast(self, method: str, *args: Any, **kwargs: Any) -> None:
        """Invoke an asynchronous method on every worker."""
        self._ensure_open()
        for worker in self.workers:
            getattr(worker, method)(*args, **kwargs)

    def map(self, method: str, items: Sequence[Any]) -> list[Any]:
        """Synchronous ``method(item)`` per item with overlap.

        Calls are issued through delegates (one in flight per worker) so
        workers compute concurrently; results come back in item order.
        """
        self._ensure_open()
        results: list[Any] = [None] * len(items)
        pending: list[tuple[int, Any]] = []  # (index, AsyncResult)
        delegates = [
            Delegate(getattr(worker, method)) for worker in self.workers
        ]
        for index, item in enumerate(items):
            delegate = delegates[index % len(self.workers)]
            pending.append((index, delegate.begin_invoke(item)))
        for index, handle in pending:
            results[index] = handle.result()
        return results

    # -- synchronization -------------------------------------------------

    def collect(self, method: str, *args: Any, **kwargs: Any) -> list[Any]:
        """Synchronous call on every worker; results in worker order.

        Also the farm's barrier: each worker's pending asynchronous work
        executes before its result (FIFO mailbox).
        """
        self._ensure_open()
        return [
            getattr(worker, method)(*args, **kwargs)
            for worker in self.workers
        ]

    def wait(self) -> None:
        """Block until every worker's queue has drained."""
        self._ensure_open()
        for worker in self.workers:
            worker.parc_wait()

    # -- lifecycle ---------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ScooppError("farm has been closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            try:
                worker.parc_release()
            except ScooppError:
                pass

    def __len__(self) -> int:
        return len(self.workers)

    def __enter__(self) -> "Farm":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Pipeline:
    """A linear chain of parallel-object stages.

    Each stage class needs an asynchronous item method (default ``feed``)
    accepting one item, and should forward transformed items to the next
    stage, reachable through the ``next_stage`` attribute the pipeline
    installs via the stage's ``set_next`` method (asynchronous,
    one-argument).  The last stage's results are fetched with a
    synchronous method of the caller's choice.

    ::

        pipeline = Pipeline([(Tokenize, ()), (Count, ())])
        for line in lines:
            pipeline.feed(line)
        counts = pipeline.call_last("totals")
        pipeline.close()
    """

    def __init__(
        self,
        stages: Sequence[tuple[type, tuple]],
        feed_method: str = "feed",
        link_method: str = "set_next",
    ) -> None:
        if not stages:
            raise ScooppError("pipeline needs at least one stage")
        self.feed_method = feed_method
        self.stages = [new(cls, *args) for cls, args in stages]
        # Wire the chain back-to-front: each stage receives a PO
        # reference to its successor (§3.1 reference passing).
        for stage, successor in zip(self.stages, self.stages[1:]):
            getattr(stage, link_method)(successor)
        self._closed = False

    @property
    def head(self) -> Any:
        return self.stages[0]

    @property
    def tail(self) -> Any:
        return self.stages[-1]

    def feed(self, item: Any) -> None:
        """Push one item into the head stage (asynchronous)."""
        self._ensure_open()
        getattr(self.head, self.feed_method)(item)

    def feed_all(self, items: Iterable[Any]) -> int:
        self._ensure_open()
        count = 0
        for item in items:
            self.feed(item)
            count += 1
        return count

    def drain(self) -> None:
        """Barrier: wait until no stage has work anywhere in the chain.

        A single flow-order wait is not enough: a stage forwards items
        through its *own* PO reference to the successor, whose aggregation
        buffer and sender live inside that stage — invisible from here.
        The barrier therefore iterates to a fixed point: quiesce every
        tracked PO outbox in the process (which includes the stages'
        internal forwarding references), wait every stage, snapshot
        per-stage processed counts, and finish only when two consecutive
        sweeps observe no movement.
        """
        import time as _time

        from repro.core import runtime as _runtime_module

        self._ensure_open()
        previous: tuple[int, ...] | None = None
        stable = 0
        while stable < 2:
            runtime = _runtime_module._runtime
            if runtime is not None:
                # Without this, a forwarded item parked in a stage's
                # sender thread for a few ms outlives the stability
                # window and the barrier returns early.
                runtime.quiesce_outboxes()
            for stage in self.stages:
                stage.parc_wait()
            snapshot = tuple(
                self._processed_count(stage) for stage in self.stages
            )
            if snapshot == previous:
                stable += 1
                _time.sleep(0.002)  # let in-transit sends land
            else:
                stable = 0
                previous = snapshot

    @staticmethod
    def _processed_count(stage: Any) -> int:
        grain = stage._parc_grain
        if grain.is_local:
            return grain.direct_calls
        return int(grain.impl.stats()["processed"])

    def call_last(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Drain the pipeline, then a synchronous call on the tail."""
        self.drain()
        return getattr(self.tail, method)(*args, **kwargs)

    def _ensure_open(self) -> None:
        if self._closed:
            raise ScooppError("pipeline has been closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for stage in self.stages:
            try:
                stage.parc_release()
            except ScooppError:
                pass

    def __len__(self) -> int:
        return len(self.stages)

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
