"""Implementation objects: the active-object container for user instances.

§3.1: parallel objects are "active objects ... having its own thread of
control".  An :class:`ImplementationObject` hosts one user instance (the
IO of Fig. 3) behind a FIFO mailbox drained by a dedicated worker thread:
calls — single or aggregated — execute strictly in arrival order, one at a
time, which is what makes SCOOPP's asynchronous invocations safe without
user locking.

In ParC++ this role needed an explicit server object (SO) with a message
loop; in ParC#/here "the C# remoting [the remoting host] implements this
loop" for the *transport*, and the container supplies only the
active-object queue (§3.2: "The ParC# implementation no longer requires
SO objects").
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ScooppError
from repro.remoting import MarshalByRefObject
from repro.serialization.codec import unpack_columns
from repro.telemetry.context import current_context
from repro.telemetry.tracer import current_tracer_var, get_global_tracer

#: The node whose implementation object is executing on this thread.
#: Parallel objects created *inside* a parallel method are placed by the
#: executing node's object manager (they originate there), not by node 0's.
current_node: contextvars.ContextVar[Any] = contextvars.ContextVar(
    "parc_current_node", default=None
)

#: The implementation object whose method is executing on this thread
#: (used for dependence-graph labelling of nested creations).
executing_impl: contextvars.ContextVar[Any] = contextvars.ContextVar(
    "parc_executing_impl", default=None
)


@dataclass
class _Task:
    """One queued invocation."""

    method: str
    args: tuple
    kwargs: dict
    done: threading.Event | None = None  # set for synchronous waits
    result: Any = None
    error: BaseException | None = None
    # Trace context captured where the task was posted (the dispatch
    # thread serving the remote call, or the local caller).  Re-activated
    # on the worker thread so the io span chains to its remote parent.
    trace: Any = None


class ImplementationObject(MarshalByRefObject):
    """Hosts a user instance; executes its methods serially in FIFO order.

    Remote surface (called through the PO's transparent proxy):

    * ``enqueue(method, args, kwargs)`` — post one asynchronous call;
    * ``enqueue_batch(method, batch)`` — post an aggregated call (the
      paper's ``processN``, Fig. 7): *batch* is a list of
      ``(args, kwargs)`` pairs, executed back-to-back;
    * ``enqueue_columns(method, count, columns)`` — the columnar form of
      the same aggregate: positional argument columns instead of repeated
      per-call tuples (smaller on the wire for homogeneous batches);
    * ``invoke(method, args, kwargs)`` — synchronous call: queued behind
      pending work, result returned (program order is preserved);
    * ``drain()`` — block until the mailbox is empty;
    * ``dispose()`` — drain and stop the worker;
    * ``stats()`` — counters for the object manager.
    """

    def __init__(
        self,
        instance: Any,
        class_name: str,
        on_execution: Callable[[str, float], None] | None = None,
        node: Any = None,
    ) -> None:
        self.instance = instance
        self.class_name = class_name
        self.node = node
        self._on_execution = on_execution
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queue: deque[_Task] = deque()
        self._active = 0  # tasks dequeued but still executing
        self._stopped = False
        self._processed = 0
        self._busy_s = 0.0
        self._async_failures: list[tuple[str, str]] = []
        self._worker = threading.Thread(
            target=self._run,
            name=f"parc-io-{class_name.rsplit('.', 1)[-1]}",
            daemon=True,
        )
        self._worker.start()

    # -- remote surface ----------------------------------------------------

    def enqueue(self, method: str, args: tuple = (), kwargs: dict | None = None) -> None:
        self._post(
            _Task(
                method=method,
                args=tuple(args),
                kwargs=dict(kwargs or {}),
                trace=current_context.get(),
            )
        )

    def enqueue_batch(self, method: str, batch: list) -> None:
        """Post one aggregate message carrying *batch* invocations.

        The whole batch is a single mailbox entry: its calls execute
        consecutively with no interleaving, matching Fig. 7's ``processN``
        loop over the parameter array.
        """
        trace = current_context.get()
        tasks = [
            _Task(
                method=method,
                args=tuple(args),
                kwargs=dict(kwargs),
                trace=trace,
            )
            for args, kwargs in batch
        ]
        with self._work_available:
            self._ensure_running()
            self._queue.extend(tasks)
            self._work_available.notify()

    def enqueue_columns(
        self, method: str, count: int, columns: list = ()
    ) -> None:
        """Post an aggregate shipped in columnar form.

        The PO sender packs a homogeneous batch as per-parameter columns
        (method name, schema and trace header encoded once); this
        rebuilds the ``(args, kwargs)`` pairs and joins the ordinary
        :meth:`enqueue_batch` path, so execution semantics are identical.
        """
        self.enqueue_batch(method, unpack_columns(count, list(columns)))

    def invoke(self, method: str, args: tuple = (), kwargs: dict | None = None) -> Any:
        task = _Task(
            method=method,
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            done=threading.Event(),
            trace=current_context.get(),
        )
        self._post(task)
        task.done.wait()
        if task.error is not None:
            raise task.error
        return task.result

    def drain(self) -> None:
        with self._idle:
            while self._queue or self._active:
                self._idle.wait()

    def dispose(self) -> None:
        with self._work_available:
            self._stopped = True
            self._work_available.notify()
        self._worker.join(timeout=30.0)

    def stats(self) -> dict:
        with self._lock:
            return {
                "class_name": self.class_name,
                "queued": len(self._queue),
                "processed": self._processed,
                "busy_s": self._busy_s,
                "async_failures": len(self._async_failures),
            }

    def async_failures(self) -> list:
        """(method, error text) pairs from failed asynchronous calls."""
        with self._lock:
            return list(self._async_failures)

    # -- worker --------------------------------------------------------------

    def _ensure_running(self) -> None:
        if self._stopped:
            raise ScooppError(
                f"implementation object for {self.class_name} is disposed"
            )

    def _post(self, task: _Task) -> None:
        with self._work_available:
            self._ensure_running()
            self._queue.append(task)
            self._work_available.notify()

    def _run(self) -> None:
        while True:
            with self._work_available:
                while not self._queue and not self._stopped:
                    self._work_available.wait()
                if not self._queue and self._stopped:
                    self._idle.notify_all()
                    return
                task = self._queue.popleft()
                self._active += 1
            self._execute(task)
            with self._lock:
                self._active -= 1
                self._processed += 1
                if not self._queue and not self._active:
                    self._idle.notify_all()

    def _execute(self, task: _Task) -> None:
        # Node-bound tracer when the cluster enabled telemetry (spans land
        # in this node's lane of the merged trace); the process-global
        # tracer otherwise (the original set_global_tracer contract).
        telemetry = getattr(self.node, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            tracer = telemetry.tracer
        else:
            telemetry = None
            tracer = get_global_tracer()
        started = time.perf_counter()
        span_name = f"{self.class_name.rsplit('.', 1)[-1]}.{task.method}"
        token = current_node.set(self.node)
        impl_token = executing_impl.set(self)
        # Re-activate the posting site's trace context (crossed the wire
        # in the parc-trace header for remote posts) and bind the tracer
        # so nested remote calls made by the user method chain onward.
        trace_token = (
            current_context.set(task.trace)
            if task.trace is not None
            else None
        )
        tracer_token = (
            current_tracer_var.set(tracer) if tracer is not None else None
        )
        span = (
            tracer.span("io", span_name, sync=task.done is not None)
            if tracer is not None
            else contextlib.nullcontext()
        )
        try:
            with span:
                try:
                    method = getattr(self.instance, task.method)
                    task.result = method(*task.args, **task.kwargs)
                except BaseException as exc:  # noqa: BLE001 - active-object boundary
                    task.error = exc
                    if task.done is None:
                        with self._lock:
                            self._async_failures.append(
                                (task.method, repr(exc))
                            )
                            del self._async_failures[:-32]
        finally:
            if tracer_token is not None:
                current_tracer_var.reset(tracer_token)
            if trace_token is not None:
                current_context.reset(trace_token)
            executing_impl.reset(impl_token)
            current_node.reset(token)
            elapsed = time.perf_counter() - started
            if telemetry is not None:
                telemetry.metrics.histogram(
                    f"parc.method.seconds.{span_name}",
                    help_text="method execution latency",
                ).observe(elapsed)
            with self._lock:
                self._busy_s += elapsed
            if self._on_execution is not None:
                try:
                    self._on_execution(self.class_name, elapsed)
                except Exception:  # noqa: BLE001 - stats must never kill work
                    pass
            if task.done is not None:
                task.done.set()

    @property
    def queue_length(self) -> int:
        with self._lock:
            return len(self._queue) + self._active
