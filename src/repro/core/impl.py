"""Implementation objects: the active-object container for user instances.

§3.1: parallel objects are "active objects ... having its own thread of
control".  An :class:`ImplementationObject` hosts one user instance (the
IO of Fig. 3) behind a mailbox drained by a dedicated worker thread:
calls — single or aggregated — execute strictly in arrival order, one at a
time, which is what makes SCOOPP's asynchronous invocations safe without
user locking.

In ParC++ this role needed an explicit server object (SO) with a message
loop; in ParC#/here "the C# remoting [the remoting host] implements this
loop" for the *transport*, and the container supplies only the
active-object queue (§3.2: "The ParC# implementation no longer requires
SO objects").

The mailbox itself (:class:`_IOMailbox`) is where admission control
lives: an optional depth bound per priority lane, fail-fast rejection
with :class:`~repro.errors.OverloadError` when a lane saturates, and an
optional deadline shed that drops queued work already past its latency
budget (see :mod:`repro.flow`).  Unbounded FIFO — the paper's model —
remains the default.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import OverloadError, ScooppError
from repro.flow.policy import DEADLINE, ShedPolicy
from repro.remoting import MarshalByRefObject
from repro.remoting.messages import ReturnBatch
from repro.serialization.codec import pack_result_column, unpack_columns
from repro.telemetry.context import current_context
from repro.telemetry.tracer import current_tracer_var, get_global_tracer

#: The node whose implementation object is executing on this thread.
#: Parallel objects created *inside* a parallel method are placed by the
#: executing node's object manager (they originate there), not by node 0's.
current_node: contextvars.ContextVar[Any] = contextvars.ContextVar(
    "parc_current_node", default=None
)

#: The implementation object whose method is executing on this thread
#: (used for dependence-graph labelling of nested creations).
executing_impl: contextvars.ContextVar[Any] = contextvars.ContextVar(
    "parc_executing_impl", default=None
)

#: Priority lanes in drain order.
LANES = ("high", "normal", "low")


class MailboxMigratedError(ScooppError):
    """Internal signal: this mailbox's grain moved to another node.

    Raised by :meth:`_IOMailbox.put` after a completed migration;
    :class:`ImplementationObject` catches it and forwards the work to
    the grain's new home, so callers never see it.
    """


@dataclass
class _Task:
    """One queued invocation."""

    method: str
    args: tuple
    kwargs: dict
    done: threading.Event | None = None  # set for synchronous waits
    result: Any = None
    error: BaseException | None = None
    # Trace context captured where the task was posted (the dispatch
    # thread serving the remote call, or the local caller).  Re-activated
    # on the worker thread so the io span chains to its remote parent.
    trace: Any = None
    # When the task entered the mailbox (monotonic seconds); the
    # deadline shed policy compares queue age against its budget.
    posted_at: float = 0.0


class _IOMailbox:
    """Bounded, priority-laned mailbox feeding one worker thread.

    Entries are *batches* (lists of :class:`_Task`): an aggregated
    ``processN`` message stays one entry, so its calls execute
    back-to-back exactly as Fig. 7 requires.  Drain order is
    high → normal → low, FIFO within a lane.

    ``depth`` bounds each lane in *tasks* (0 = unbounded, the paper's
    semantics).  A full lane rejects new work with
    :class:`OverloadError` — admission control happens here, on the
    dispatch thread serving the remote ``enqueue``, so the typed error
    travels back to the caller synchronously.

    Accounting invariant: ``_active`` covers every task of a dequeued
    batch from the moment :meth:`pop` hands it out (incremented under
    the same lock that pops the entry) until :meth:`batch_done` returns
    it.  ``drain()`` waits for lanes empty *and* ``_active == 0``, so it
    can never return while a dequeued batch is still executing.
    """

    def __init__(self, depth: int = 0, lane_of: Mapping[str, str] | None = None) -> None:
        self.depth = depth
        self._lane_of = dict(lane_of or {})
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._lanes: dict[str, deque[list[_Task]]] = {
            lane: deque() for lane in LANES
        }
        self._queued: dict[str, int] = {lane: 0 for lane in LANES}
        self._active = 0  # tasks dequeued but not yet finished
        self._inline_claims = 0  # sync fast-path calls executing inline
        self._stopped = False
        self._migrating = False  # paused for state extraction
        self._migrated = False  # grain lives elsewhere now

    def lane_for(self, method: str) -> str:
        lane = self._lane_of.get(method, "normal")
        return lane if lane in self._lanes else "normal"

    def put(self, method: str, tasks: list[_Task]) -> None:
        """Admit one entry (single call or aggregate batch).

        Raises :class:`OverloadError` when the target lane cannot hold
        the entry, :class:`ScooppError` after :meth:`stop`.
        """
        lane = self.lane_for(method)
        with self._work_available:
            # A migration in progress parks admitters until the grain's
            # fate is known: resumed here (abort) or forwarded to its
            # new home (complete).
            while self._migrating:
                self._work_available.wait()
            if self._migrated:
                raise MailboxMigratedError("mailbox migrated away")
            if self._stopped:
                raise ScooppError("mailbox is disposed")
            if self.depth and self._queued[lane] + len(tasks) > self.depth:
                raise OverloadError(
                    f"mailbox lane {lane!r} is full "
                    f"({self._queued[lane]}/{self.depth} queued); "
                    f"call to {method!r} shed"
                )
            self._lanes[lane].append(tasks)
            self._queued[lane] += len(tasks)
            self._work_available.notify()

    def pop(self) -> list[_Task] | None:
        """Next entry in priority order; ``None`` once stopped and empty.

        The batch's tasks are added to ``_active`` *before* the lock is
        released — the window where work is neither queued nor active is
        exactly what would let ``drain()`` return early.
        """
        with self._work_available:
            while True:
                # The ``not self._inline_claims`` gate keeps the worker
                # parked while a sync fast-path claim executes inline on
                # the caller's thread — popping here would break the one-
                # at-a-time execution guarantee of the active object.
                if not self._migrating and not self._inline_claims:
                    for lane in LANES:
                        entries = self._lanes[lane]
                        if entries:
                            batch = entries.popleft()
                            self._queued[lane] -= len(batch)
                            self._active += len(batch)
                            return batch
                    if self._stopped:
                        self._idle.notify_all()
                        return None
                self._work_available.wait()

    def try_claim_idle(self) -> bool:
        """Claim the execution slot iff the mailbox is completely idle.

        The sync fast path runs a call inline on the caller's thread;
        that preserves FIFO order only when nothing is queued in any
        lane *and* nothing is executing.  The claim has its own counter
        (``_inline_claims``) rather than riding ``_active``: it parks
        the worker in :meth:`pop` and stalls drain/migration exactly
        like a dequeued batch, without changing pop's own contract
        (consecutive pops need no intervening :meth:`batch_done`).
        Balance with :meth:`release_claim`.
        """
        with self._lock:
            if (
                self._stopped
                or self._migrating
                or self._migrated
                or self._active
                or self._inline_claims
                or any(self._queued.values())
            ):
                return False
            self._inline_claims += 1
            return True

    def release_claim(self) -> None:
        """Release a :meth:`try_claim_idle` slot and wake the worker."""
        with self._work_available:
            self._inline_claims -= 1
            if self._inline_claims == 0:
                # Work may have queued behind the inline call; the
                # worker is parked on the _inline_claims gate in pop().
                self._work_available.notify()
                if self._migrating or not any(self._queued.values()):
                    self._idle.notify_all()

    def batch_done(self, count: int) -> None:
        with self._lock:
            self._active -= count
            if self._active == 0 and (
                self._migrating or not any(self._queued.values())
            ):
                self._idle.notify_all()

    def drain(self) -> None:
        with self._idle:
            while (
                self._active
                or self._inline_claims
                or any(self._queued.values())
                or self._migrating
            ):
                self._idle.wait()

    def stop(self) -> None:
        """Refuse new work; the worker drains what is queued, then exits."""
        with self._work_available:
            self._stopped = True
            self._work_available.notify()

    # -- live migration ----------------------------------------------------

    def begin_migration(self) -> list[list[_Task]]:
        """Pause the mailbox and extract every queued entry.

        Blocks new admissions, waits out the batch executing right now
        (it always finishes on this node — executing work is never
        stolen), then removes all queued entries in drain order
        (high → normal → low, FIFO within a lane) and returns them.
        Once this returns, the worker is idle and the hosted instance's
        state is stable, so it is safe to serialize.

        The caller must finish with :meth:`complete_migration` or
        :meth:`abort_migration`.
        """
        with self._work_available:
            if self._stopped or self._migrated:
                raise ScooppError("mailbox is disposed")
            if self._migrating:
                raise ScooppError("migration already in progress")
            self._migrating = True
            while self._active or self._inline_claims:
                self._idle.wait()
            entries: list[list[_Task]] = []
            for lane in LANES:
                while self._lanes[lane]:
                    batch = self._lanes[lane].popleft()
                    self._queued[lane] -= len(batch)
                    entries.append(batch)
            return entries

    def abort_migration(self, entries: list[list[_Task]]) -> None:
        """Requeue the extracted entries and resume normal service."""
        with self._work_available:
            for batch in entries:
                if not batch:
                    continue
                lane = self.lane_for(batch[0].method)
                self._lanes[lane].append(batch)
                self._queued[lane] += len(batch)
            self._migrating = False
            self._work_available.notify_all()
            self._idle.notify_all()

    def complete_migration(self) -> None:
        """The grain lives elsewhere now: unblock everyone.

        Parked admitters raise :class:`MailboxMigratedError` (the
        implementation object forwards their work), the worker thread
        exits, and drain waiters fall through to the forward path.
        """
        with self._work_available:
            self._migrated = True
            self._migrating = False
            self._stopped = True
            self._work_available.notify_all()
            self._idle.notify_all()

    @property
    def migrated(self) -> bool:
        with self._lock:
            return self._migrated

    @property
    def stopped(self) -> bool:
        with self._lock:
            return self._stopped

    def queued_count(self) -> int:
        with self._lock:
            return sum(self._queued.values())

    def queue_length(self) -> int:
        with self._lock:
            return sum(self._queued.values()) + self._active + self._inline_claims

    def lane_depths(self) -> dict[str, int]:
        with self._lock:
            return dict(self._queued)


class ImplementationObject(MarshalByRefObject):
    """Hosts a user instance; executes its methods serially in FIFO order.

    Remote surface (called through the PO's transparent proxy):

    * ``enqueue(method, args, kwargs)`` — post one asynchronous call;
    * ``enqueue_batch(method, batch)`` — post an aggregated call (the
      paper's ``processN``, Fig. 7): *batch* is a list of
      ``(args, kwargs)`` pairs, executed back-to-back;
    * ``enqueue_columns(method, count, columns)`` — the columnar form of
      the same aggregate: positional argument columns instead of repeated
      per-call tuples (smaller on the wire for homogeneous batches);
    * ``invoke(method, args, kwargs)`` — synchronous call: queued behind
      pending work, result returned (program order is preserved);
    * ``drain()`` — block until the mailbox is empty;
    * ``dispose()`` — drain and stop the worker;
    * ``stats()`` — counters for the object manager.

    Flow-control knobs (all off by default, threaded from
    ``ParcConfig``): *mailbox_depth* bounds each priority lane;
    *priority* maps method names (optionally ``Class.method``) to lanes
    ``high``/``normal``/``low``; *shed_policy* picks what happens to
    excess work (see :class:`repro.flow.ShedPolicy`).
    """

    def __init__(
        self,
        instance: Any,
        class_name: str,
        on_execution: Callable[[str, float], None] | None = None,
        node: Any = None,
        mailbox_depth: int = 0,
        priority: Mapping[str, str] | None = None,
        shed_policy: "str | ShedPolicy | None" = None,
        sync_fastpath: bool = True,
    ) -> None:
        self.instance = instance
        self.class_name = class_name
        self.node = node
        # Proxy to the grain's new home after a migrate-out; while set,
        # this object is a forwarding shell for straggler callers.
        self._forward: Any = None
        self._on_execution = on_execution
        # Newer observers take (class_name, elapsed_s, method) so the
        # autotuner can keep per-method statistics; older two-argument
        # callbacks are detected on first TypeError and kept working.
        self._on_execution_with_method = on_execution is not None
        self._sync_fastpath = sync_fastpath
        self._shed_policy = ShedPolicy.parse(shed_policy)
        self._mailbox = _IOMailbox(
            depth=mailbox_depth,
            lane_of=self._method_lanes(class_name, priority),
        )
        self._stats_lock = threading.Lock()
        self._processed = 0
        self._inline = 0  # sync calls served via the fast path
        self._busy_s = 0.0
        self._shed = {"overflow": 0, "deadline": 0}
        self._async_failures: list[tuple[str, str]] = []
        self._worker = threading.Thread(
            target=self._run,
            name=f"parc-io-{class_name.rsplit('.', 1)[-1]}",
            daemon=True,
        )
        self._worker.start()

    @staticmethod
    def _method_lanes(
        class_name: str, priority: Mapping[str, str] | None
    ) -> dict[str, str]:
        """Normalize a priority mapping to plain method names.

        Accepts bare method names and ``Class.method`` keys (matched
        against the short or fully qualified class name); entries scoped
        to other classes are ignored, so one cluster-wide mapping works.
        """
        if not priority:
            return {}
        short = class_name.rsplit(".", 1)[-1]
        lanes: dict[str, str] = {}
        for key, lane in priority.items():
            if "." in key:
                cls_part, _, method = key.rpartition(".")
                if cls_part in (short, class_name):
                    lanes[method] = lane
            else:
                lanes[key] = lane
        return lanes

    # -- remote surface ----------------------------------------------------

    def enqueue(self, method: str, args: tuple = (), kwargs: dict | None = None) -> None:
        self._post(
            method,
            [
                _Task(
                    method=method,
                    args=tuple(args),
                    kwargs=dict(kwargs or {}),
                    trace=current_context.get(),
                    posted_at=time.monotonic(),
                )
            ],
        )

    def enqueue_batch(self, method: str, batch: list) -> None:
        """Post one aggregate message carrying *batch* invocations.

        The whole batch is a single mailbox entry: its calls execute
        consecutively with no interleaving, matching Fig. 7's ``processN``
        loop over the parameter array.
        """
        trace = current_context.get()
        posted_at = time.monotonic()
        tasks = [
            _Task(
                method=method,
                args=tuple(args),
                kwargs=dict(kwargs),
                trace=trace,
                posted_at=posted_at,
            )
            for args, kwargs in batch
        ]
        if tasks:
            self._post(method, tasks)

    def enqueue_columns(
        self, method: str, count: int, columns: list = ()
    ) -> None:
        """Post an aggregate shipped in columnar form.

        The PO sender packs a homogeneous batch as per-parameter columns
        (method name, schema and trace header encoded once); this
        rebuilds the ``(args, kwargs)`` pairs and joins the ordinary
        :meth:`enqueue_batch` path, so execution semantics are identical.
        """
        self.enqueue_batch(method, unpack_columns(count, list(columns)))

    def invoke(self, method: str, args: tuple = (), kwargs: dict | None = None) -> Any:
        task = _Task(
            method=method,
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            done=threading.Event(),
            trace=current_context.get(),
            posted_at=time.monotonic(),
        )
        if not self._run_inline([task]):
            self._post(method, [task])
            task.done.wait()
        if task.error is not None:
            raise task.error
        return task.result

    def invoke_batch(self, method: str, batch: list) -> Any:
        """Synchronous aggregate: N calls in, one ``returnN`` reply out.

        The reply-side twin of :meth:`enqueue_batch`: *batch* is the
        same ``[(args, kwargs), ...]`` list, posted as ONE mailbox entry
        (back-to-back execution, FIFO with surrounding work) — but every
        call is synchronous and the results travel back as a single
        :class:`~repro.remoting.messages.ReturnBatch` instead of N
        response frames.  Per-call failures land in the batch's error
        slots; they never abort the remaining calls.

        Old peers simply do not have this method, so a new client
        calling an old server gets the standard "has no remote method"
        error and falls back to per-call :meth:`invoke` — that is the
        whole version negotiation.
        """
        trace = current_context.get()
        posted_at = time.monotonic()
        tasks = [
            _Task(
                method=method,
                args=tuple(args),
                kwargs=dict(kwargs),
                done=threading.Event(),
                trace=trace,
                posted_at=posted_at,
            )
            for args, kwargs in batch
        ]
        if not tasks:
            return ReturnBatch(count=0, results=[], errors=())
        if not self._run_inline(tasks):
            self._post(method, tasks)
            # One wait suffices: the batch is a single mailbox entry and
            # executes serially, so the last task finishes last — and
            # every completion path (_execute, _shed_task, forwarding)
            # sets each task's event in order.
            tasks[-1].done.wait()
        results: list = []
        errors: list[tuple] = []
        for index, task in enumerate(tasks):
            if task.error is not None:
                results.append(None)
                errors.append(
                    (
                        index,
                        type(task.error).__qualname__,
                        str(task.error),
                        "".join(
                            traceback.format_exception(
                                type(task.error),
                                task.error,
                                task.error.__traceback__,
                            )
                        ),
                    )
                )
            else:
                results.append(task.result)
        return ReturnBatch(
            count=len(tasks),
            results=pack_result_column(results),
            errors=tuple(errors),
        )

    def invoke_columns(self, method: str, count: int, columns: list = ()) -> Any:
        """Columnar form of :meth:`invoke_batch` (processN in, returnN out)."""
        return self.invoke_batch(method, unpack_columns(count, list(columns)))

    def _run_inline(self, tasks: list[_Task]) -> bool:
        """Sync fast path: execute *tasks* on the caller's thread.

        Succeeds only when the mailbox is provably idle (nothing queued
        in any lane, nothing executing), which makes inline execution
        indistinguishable from the post→worker→wait round-trip except
        for the latency: FIFO order holds trivially, and the claimed
        inline slot parks the worker plus any drain/migration until
        the inline call finishes.
        """
        if not self._sync_fastpath or not self._mailbox.try_claim_idle():
            return False
        try:
            for task in tasks:
                self._execute(task)
                with self._stats_lock:
                    self._processed += 1
                    self._inline += 1
        finally:
            self._mailbox.release_claim()
        return True

    def drain(self) -> None:
        self._mailbox.drain()
        forward = self._forward
        if forward is not None:
            forward.drain()

    def dispose(self) -> None:
        self._mailbox.stop()
        self._worker.join(timeout=30.0)

    def stats(self) -> dict:
        with self._stats_lock:
            shed = dict(self._shed)
            processed = self._processed
            inline = self._inline
            busy_s = self._busy_s
            failures = len(self._async_failures)
        return {
            "class_name": self.class_name,
            "queued": self._mailbox.queued_count(),
            "lanes": self._mailbox.lane_depths(),
            "processed": processed,
            "sync_inline": inline,
            "busy_s": busy_s,
            "shed": shed["overflow"] + shed["deadline"],
            "shed_overflow": shed["overflow"],
            "shed_deadline": shed["deadline"],
            "async_failures": failures,
            "migrated": self._mailbox.migrated,
        }

    def async_failures(self) -> list:
        """(method, error text) pairs from failed asynchronous calls."""
        with self._stats_lock:
            return list(self._async_failures)

    # -- live migration ----------------------------------------------------

    def begin_migration(self) -> list[list[_Task]]:
        """Pause the mailbox; see :meth:`_IOMailbox.begin_migration`."""
        return self._mailbox.begin_migration()

    def abort_migration(self, entries: list[list[_Task]]) -> None:
        self._mailbox.abort_migration(entries)

    def complete_migration(self, forward: Any) -> None:
        """Turn this object into a forwarding shell for *forward*.

        *forward* is a proxy (or local reference) to the adopted
        implementation object on the grain's new node.  It must be in
        place before the mailbox flips, so admitters released by
        ``complete_migration`` always find somewhere to forward to.
        """
        self._forward = forward
        self._mailbox.complete_migration()

    @property
    def migrated(self) -> bool:
        return self._mailbox.migrated

    def stealable_backlog(self) -> tuple[int, int]:
        """(queued normal+low tasks, queued high tasks).

        The first figure is what the rebalancer may move; a nonzero
        second pins the grain (high-priority work is never stolen).
        """
        lanes = self._mailbox.lane_depths()
        return lanes["normal"] + lanes["low"], lanes["high"]

    # -- worker --------------------------------------------------------------

    def _post(self, method: str, tasks: list[_Task]) -> None:
        try:
            self._mailbox.put(method, tasks)
        except OverloadError:
            self._note_shed("overflow", len(tasks), method)
            raise
        except MailboxMigratedError:
            self._forward_tasks(method, tasks)
        except ScooppError:
            raise ScooppError(
                f"implementation object for {self.class_name} is disposed"
            ) from None

    def _forward_tasks(self, method: str, tasks: list[_Task]) -> None:
        """Relay work that raced a completed migration to the new home."""
        forward = self._forward
        if forward is None:
            raise ScooppError(
                f"implementation object for {self.class_name} migrated "
                "away with no forwarding address"
            )
        if all(task.done is None for task in tasks):
            forward.enqueue_batch(
                method, [(task.args, task.kwargs) for task in tasks]
            )
            return
        for task in tasks:
            if task.done is None:
                forward.enqueue(method, task.args, task.kwargs)
                continue
            # Synchronous stragglers complete inline: the caller's wait
            # event is local, so the result is relayed rather than the
            # task object itself.
            try:
                task.result = forward.invoke(method, task.args, task.kwargs)
            except BaseException as exc:  # noqa: BLE001 - relay verbatim
                task.error = exc
            task.done.set()

    def _note_shed(self, reason: str, count: int, method: str) -> None:
        with self._stats_lock:
            self._shed[reason] += count
        telemetry = getattr(self.node, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            telemetry.metrics.counter(
                "flow.shed", "calls shed by mailbox admission control"
            ).inc(count)
            telemetry.metrics.counter(
                f"flow.shed.{reason}", f"calls shed ({reason})"
            ).inc(count)
            telemetry.tracer.instant(
                "flow",
                f"flow.shed.{reason}",
                class_name=self.class_name,
                method=method,
                count=count,
            )

    def _past_deadline(self, task: _Task) -> bool:
        policy = self._shed_policy
        return (
            policy.kind == DEADLINE
            and policy.budget_s is not None
            and time.monotonic() - task.posted_at > policy.budget_s
        )

    def _shed_task(self, task: _Task) -> None:
        """Drop a queued task whose caller has already given up on it."""
        age = time.monotonic() - task.posted_at
        task.error = OverloadError(
            f"call to {task.method!r} shed after {age:.3f}s in the "
            f"mailbox (deadline budget {self._shed_policy.budget_s:.3g}s)"
        )
        self._note_shed("deadline", 1, task.method)
        if task.done is None:
            with self._stats_lock:
                self._async_failures.append((task.method, repr(task.error)))
                del self._async_failures[:-32]
        else:
            task.done.set()

    def _run(self) -> None:
        while True:
            batch = self._mailbox.pop()
            if batch is None:
                return
            try:
                for task in batch:
                    if self._past_deadline(task):
                        self._shed_task(task)
                    else:
                        self._execute(task)
                    with self._stats_lock:
                        self._processed += 1
            finally:
                self._mailbox.batch_done(len(batch))

    def _execute(self, task: _Task) -> None:
        # Node-bound tracer when the cluster enabled telemetry (spans land
        # in this node's lane of the merged trace); the process-global
        # tracer otherwise (the original set_global_tracer contract).
        telemetry = getattr(self.node, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            tracer = telemetry.tracer
        else:
            telemetry = None
            tracer = get_global_tracer()
        started = time.perf_counter()
        span_name = f"{self.class_name.rsplit('.', 1)[-1]}.{task.method}"
        token = current_node.set(self.node)
        impl_token = executing_impl.set(self)
        # Re-activate the posting site's trace context (crossed the wire
        # in the parc-trace header for remote posts) and bind the tracer
        # so nested remote calls made by the user method chain onward.
        trace_token = (
            current_context.set(task.trace)
            if task.trace is not None
            else None
        )
        tracer_token = (
            current_tracer_var.set(tracer) if tracer is not None else None
        )
        span = (
            tracer.span("io", span_name, sync=task.done is not None)
            if tracer is not None
            else contextlib.nullcontext()
        )
        try:
            with span:
                try:
                    method = getattr(self.instance, task.method)
                    task.result = method(*task.args, **task.kwargs)
                except BaseException as exc:  # noqa: BLE001 - active-object boundary
                    task.error = exc
                    if task.done is None:
                        with self._stats_lock:
                            self._async_failures.append(
                                (task.method, repr(exc))
                            )
                            del self._async_failures[:-32]
        finally:
            if tracer_token is not None:
                current_tracer_var.reset(tracer_token)
            if trace_token is not None:
                current_context.reset(trace_token)
            executing_impl.reset(impl_token)
            current_node.reset(token)
            elapsed = time.perf_counter() - started
            if telemetry is not None:
                telemetry.metrics.histogram(
                    f"parc.method.seconds.{span_name}",
                    help_text="method execution latency",
                ).observe(elapsed)
            with self._stats_lock:
                self._busy_s += elapsed
            if self._on_execution is not None:
                try:
                    if self._on_execution_with_method:
                        try:
                            self._on_execution(
                                self.class_name, elapsed, task.method
                            )
                        except TypeError:
                            # Legacy two-argument observer; remember and
                            # retry without the method name.
                            self._on_execution_with_method = False
                            self._on_execution(self.class_name, elapsed)
                    else:
                        self._on_execution(self.class_name, elapsed)
                except Exception:  # noqa: BLE001 - stats must never kill work
                    pass
            if task.done is not None:
                task.done.set()

    @property
    def queue_length(self) -> int:
        return self._mailbox.queue_length()
