"""Proxy objects (PO): the client half of a parallel object.

§3.2: "A PO represents a local or a remote parallel object and has the
same interface as the object it represents.  It transparently replaces
remote parallel objects and forwards all method invocations to the remote
parallel object implementation."

A PO owns one *grain*:

* :class:`RemoteGrain` — the parallel case: a transparent proxy to the
  remote :class:`~repro.core.impl.ImplementationObject`, plus the PO-side
  grain-size machinery — aggregation buffers (Fig. 7) and a dedicated
  sender thread so asynchronous calls return immediately to the caller
  while staying in program order on the wire;
* :class:`LocalGrain` — the agglomerated case (Fig. 5's ``if
  aglomerateObj``): the IO lives in-place and "its subsequent
  (asynchronous parallel) method invocations are actually executed
  synchronously and serially".

Generated PO classes (from :func:`make_parallel_class` or the source
preprocessor) subclass :class:`ProxyObject` and add one forwarding method
per user method — async methods post, sync methods flush-then-call.
"""

from __future__ import annotations

import itertools
import threading
import time as _time
from collections import deque
from typing import Any

from repro.core.model import MethodKind, ParallelClassInfo, parallel_class_table
from repro.errors import (
    BatchCallError,
    ChannelError,
    GrainError,
    NodeLostError,
    OverloadError,
    RemoteInvocationError,
    RemotingError,
    ScooppError,
)
from repro.remoting.objref import ObjRef
from repro.remoting.proxy import RemoteProxy
from repro.serialization.codec import (
    method_column_plan,
    pack_columns,
    unpack_result_column,
)
from repro.serialization.registry import Surrogate, default_registry
from repro.telemetry.context import activate, current_context
from repro.telemetry.tracer import active_tracer

_grain_ids = itertools.count(1)

#: Errors that *may* mean "the hosting node is gone" and are worth a
#: recovery attempt.  RemoteInvocationError is in the RemotingError tree
#: but is filtered out downstream: the method ran, the node is alive.
_TRANSPORT_ERRORS = (ChannelError, RemotingError, ConnectionError)


class LocalGrain:
    """Agglomerated grain: direct, serial, in-place execution."""

    is_local = True

    def __init__(self, instance: Any, class_name: str) -> None:
        self.instance = instance
        self.class_name = class_name
        self.grain_id = next(_grain_ids)
        self.direct_calls = 0

    def post(self, method: str, args: tuple, kwargs: dict) -> None:
        # Asynchronous in the model, synchronous in the agglomerated
        # implementation — exactly the parallelism removal of §3.1.
        self.direct_calls += 1
        getattr(self.instance, method)(*args, **kwargs)

    def call(self, method: str, args: tuple, kwargs: dict) -> Any:
        self.direct_calls += 1
        return getattr(self.instance, method)(*args, **kwargs)

    def call_many(self, method: str, batch: list) -> list:
        """Synchronous aggregate on an agglomerated grain: run serially.

        Same contract as :meth:`RemoteGrain.call_many`: one result per
        ``(args, kwargs)`` pair; per-call failures collect into a
        :class:`~repro.errors.BatchCallError` instead of aborting the
        rest of the batch.
        """
        func = getattr(self.instance, method)
        results: list = []
        failures: dict[int, BaseException] = {}
        for index, (args, kwargs) in enumerate(batch):
            self.direct_calls += 1
            try:
                results.append(func(*args, **kwargs))
            except Exception as exc:  # noqa: BLE001 - per-call error slot
                results.append(None)
                failures[index] = exc
        if failures:
            raise BatchCallError(
                f"{len(failures)}/{len(results)} calls of {method!r} "
                f"failed in a call_many batch",
                results,
                failures,
            )
        return results

    def flush(self) -> None:
        return None

    def drain(self) -> None:
        return None

    def dispose(self) -> None:
        return None


class RemoteGrain:
    """Parallel grain: aggregation buffers + ordered sender + remote IO.

    Aggregation is "(delay and) combine" (§3.1): a partial batch is never
    held indefinitely — the sender thread auto-flushes any buffer older
    than *flush_after_s*, so asynchronous calls always make progress even
    when the program stops short of ``max_calls``.
    """

    is_local = False

    #: Default maximum age of a partial aggregation batch (seconds).
    FLUSH_AFTER_S = 0.005

    #: Minimum interval between autotuner consultations (seconds) — the
    #: controller's EWMAs move slowly, so re-deciding on every post would
    #: only add lock traffic.
    RETUNE_PERIOD_S = 0.02

    def __init__(
        self,
        impl_proxy: RemoteProxy,
        max_calls: int,
        flush_after_s: float | None = None,
    ) -> None:
        if max_calls < 1:
            raise GrainError(f"max_calls must be >= 1, got {max_calls}")
        self.impl = impl_proxy
        self.max_calls = max_calls
        self.flush_after_s = (
            flush_after_s if flush_after_s is not None else self.FLUSH_AFTER_S
        )
        self.grain_id = next(_grain_ids)
        # Messages shipped, split by kind.  ``batches_sent`` remains the
        # historical total (singles + batches) for back-compat; the split
        # counters are what metrics_snapshot exposes.
        self.batches_sent = 0
        self.batches = 0
        self.singles = 0
        self.calls_posted = 0
        # Calls refused with OverloadError (shed remotely or stalled out
        # at the credit gate) — never retried, never treated as a crash.
        self.sheds = 0
        # Columnar aggregates: enabled by the runtime when the wire fast
        # path is on.  *impl_class* (the user class, set by the runtime)
        # supplies method signatures for column planning.
        self.columnar = False
        self.impl_class: type | None = None
        self._column_plans: dict[str, Any] = {}
        # Batched replies (returnN): on until the peer proves too old —
        # an IO without ``invoke_batch`` answers "has no remote method"
        # and this grain silently drops to per-call invokes, exactly the
        # columnar-fallback negotiation.  ``_sync_columnar`` gates only
        # the columnar *request* form of the sync aggregate, so an old
        # peer that still speaks ``enqueue_columns`` keeps its async
        # columnar path.
        self._sync_batched = True
        self._sync_columnar = True
        # Telemetry-fed autotuning: set by the runtime under an adaptive
        # grain controller.  ``decide_method`` is consulted (rate-limited
        # by RETUNE_PERIOD_S) when a new aggregation buffer opens, so
        # max_calls/flush_after_s track the method actually being posted.
        self.tuner = None
        self.tuner_class: str | None = None
        self._tuning_stamp = 0.0
        # Observer fed (serialized request bytes, calls carried) after
        # each successful send — the adaptive grain controller's
        # bytes-per-call input.
        self.wire_observer = None
        # Crash-recovery hooks, set by the runtime after construction:
        # *spec* is the (info, args, kwargs) needed to re-create the IO,
        # *recoverer* is ``runtime.recover_grain`` (returns True once the
        # grain has been rebound to a respawned IO).
        self.spec: tuple | None = None
        self.restartable = False
        self.recoverer = None
        self._lock = threading.Lock()
        self._buffer_method: str | None = None
        self._buffer: list[tuple[tuple, dict]] = []
        self._buffer_since = 0.0
        self._buffer_ctx = None  # trace context of the first buffered call
        self._outbox: deque = deque()
        self._outbox_cv = threading.Condition(self._lock)
        self._sender_error: BaseException | None = None
        self._lost: NodeLostError | None = None
        self._released = False
        self._sender = threading.Thread(
            target=self._send_loop, name="parc-po-sender", daemon=True
        )
        self._sender.start()

    # -- async path -----------------------------------------------------

    def post(self, method: str, args: tuple, kwargs: dict) -> None:
        """Buffer an asynchronous call; ship a batch at ``max_calls``.

        Buffering is per *consecutive run* of one method: a call to a
        different method flushes the previous run first, so total program
        order is preserved (batches and singles leave in caller order).
        """
        self._with_recovery(lambda: self._post_once(method, args, kwargs))

    def _post_once(self, method: str, args: tuple, kwargs: dict) -> None:
        # The PO call site: capture the caller's trace context here so the
        # sender thread can re-activate it when the (possibly batched)
        # call actually leaves — the remote io span chains to the span
        # that was active at post time, not to the sender thread.
        ctx = current_context.get()
        with self._lock:
            self._ensure_usable()
            self.calls_posted += 1
            if not self._buffer:
                self._maybe_retune(method)
            if self.max_calls == 1:
                self._enqueue_locked(
                    ("single", method, (tuple(args), dict(kwargs)), ctx)
                )
                return
            if self._buffer_method not in (None, method):
                self._flush_locked()
            if not self._buffer:
                self._buffer_since = _time.monotonic()
                self._buffer_ctx = ctx
                # Wake the sender so it can arm the auto-flush timer.
                self._outbox_cv.notify_all()
            self._buffer_method = method
            self._buffer.append((tuple(args), dict(kwargs)))
            if len(self._buffer) >= self.max_calls:
                self._flush_locked()

    # -- sync path ------------------------------------------------------

    def call(self, method: str, args: tuple, kwargs: dict) -> Any:
        """Synchronous call: flush pending work, then round-trip.

        The IO's FIFO mailbox guarantees the flushed batches execute
        before this call — program order holds across the async/sync
        boundary.

        A transport failure here is the *reactive* detection path: the
        runtime's recoverer confirms the node is dead, respawns a
        restartable grain on a surviving node and the call is retried
        once against the new IO; non-restartable grains surface
        :class:`~repro.errors.NodeLostError`.
        """
        return self._with_recovery(lambda: self._call_once(method, args, kwargs))

    def _call_once(self, method: str, args: tuple, kwargs: dict) -> Any:
        with self._lock:
            self._ensure_usable()
            self._flush_locked()
        self._wait_outbox_empty()
        tracer = active_tracer()
        if tracer is None:
            return self.impl.invoke(method, tuple(args), dict(kwargs))
        with tracer.span("po", f"po.{method}", grain=self.grain_id):
            return self.impl.invoke(method, tuple(args), dict(kwargs))

    def call_many(self, method: str, batch: list) -> list:
        """N synchronous calls, one wire round-trip (processN + returnN).

        *batch* is ``[(args, kwargs), ...]``; returns one result per
        pair, in order.  The aggregate ships as a single request (the
        columnar form when the batch shape allows) and the IO answers
        with one :class:`~repro.remoting.messages.ReturnBatch` instead
        of N response frames.  Per-call failures come back in the
        batch's error slots and are re-raised here as a
        :class:`~repro.errors.BatchCallError` that still carries every
        successful result.

        Old peers without ``invoke_batch`` refuse the first attempt with
        the standard missing-method error; the grain then falls back —
        permanently, for its lifetime — to a loop of plain per-call
        ``invoke`` round-trips that are byte-identical to hand-written
        singles, so mixed-version clusters lose nothing but the speedup.
        """
        normalized = [
            (tuple(args), dict(kwargs)) for args, kwargs in batch
        ]
        if not normalized:
            return []
        return self._with_recovery(
            lambda: self._call_many_once(method, normalized)
        )

    def _call_many_once(self, method: str, batch: list) -> list:
        with self._lock:
            self._ensure_usable()
            self._flush_locked()
        self._wait_outbox_empty()
        tracer = active_tracer()
        if tracer is None:
            return self._call_many_inner(method, batch)
        with tracer.span(
            "po", f"po.{method}xN", grain=self.grain_id, calls=len(batch)
        ):
            return self._call_many_inner(method, batch)

    def _call_many_inner(self, method: str, batch: list) -> list:
        if self._sync_batched:
            try:
                reply = self._invoke_batched(method, batch)
            except RemoteInvocationError:
                # Peer predates invoke_batch: negotiate down for good.
                self._sync_batched = False
            else:
                return self._unpack_returnn(method, reply, len(batch))
        results: list = []
        failures: dict[int, BaseException] = {}
        for index, (args, kwargs) in enumerate(batch):
            try:
                results.append(self.impl.invoke(method, args, kwargs))
            except (OverloadError, RemoteInvocationError) as exc:
                results.append(None)
                failures[index] = exc
        if failures:
            raise BatchCallError(
                f"{len(failures)}/{len(batch)} calls of {method!r} "
                f"failed in a call_many batch",
                results,
                failures,
            )
        return results

    def _invoke_batched(self, method: str, batch: list):  # type: ignore[no-untyped-def]
        if self.columnar and self._sync_columnar:
            columns = pack_columns(batch, self._plan_for(method))
            if columns is not None:
                try:
                    return self.impl.invoke_columns(
                        method, len(batch), list(columns)
                    )
                except RemoteInvocationError:
                    # Only the sync columnar surface is missing; the
                    # row-form invoke_batch below decides whether the
                    # peer speaks returnN at all.
                    self._sync_columnar = False
        return self.impl.invoke_batch(method, batch)

    def _unpack_returnn(self, method: str, reply, count: int) -> list:  # type: ignore[no-untyped-def]
        if reply is None or getattr(reply, "count", None) != count:
            raise ScooppError(
                f"returnN reply for {method!r} carries "
                f"{getattr(reply, 'count', None)} results, expected {count}"
            )
        results = unpack_result_column(reply.count, reply.results)
        if not reply.errors:
            return results
        failures: dict[int, BaseException] = {}
        for slot in reply.errors:
            index, type_name, message = int(slot[0]), slot[1], slot[2]
            trace_text = slot[3] if len(slot) > 3 else ""
            if type_name == "OverloadError":
                failures[index] = OverloadError(message)
            else:
                failures[index] = RemoteInvocationError(
                    f"remote call failed: {type_name}: {message}",
                    remote_traceback=trace_text,
                )
        raise BatchCallError(
            f"{len(failures)}/{count} calls of {method!r} failed in a "
            f"call_many batch",
            results,
            failures,
        )

    # -- grain controls ----------------------------------------------------

    def flush(self) -> None:
        """Ship any buffered calls now (does not wait for execution)."""
        with self._lock:
            self._ensure_usable()
            self._flush_locked()

    def sync_outbox(self) -> None:
        """Flush and wait until every shipped call is in the IO's mailbox.

        This is the happens-before edge used when this grain's PO is
        passed by reference: once the reference arrives, any call the
        receiver makes through it is ordered after the sender's earlier
        asynchronous calls (the IO mailbox is FIFO).
        """
        self.flush()
        self._wait_outbox_empty()

    def drain(self) -> None:
        """Flush and block until the IO has executed everything."""
        self.flush()
        self._wait_outbox_empty()
        self.impl.drain()

    def dispose(self) -> None:
        try:
            with self._lock:
                if self._released:
                    return
                if self._lost is None:
                    self._flush_locked()
            if self._lost is None:
                self._wait_outbox_empty()
        finally:
            with self._lock:
                already = self._released
                self._released = True
                self._outbox_cv.notify_all()
        if not already and self._lost is None:
            self.impl.dispose()
        self._sender.join(timeout=30.0)

    # -- crash recovery ----------------------------------------------------

    def home_authority(self) -> str | None:
        """Authority hosting the IO, or None for an in-process impl."""
        ref = getattr(self.impl, "_parc_objref", None)
        if ref is None or not ref.uris:
            return None
        from repro.channels.services import parse_uri

        return parse_uri(ref.uris[0]).authority

    def rebind(self, new_impl) -> None:  # type: ignore[no-untyped-def]
        """Repoint this grain at a respawned IO (clears failure state).

        Buffered-but-unflushed asynchronous calls are preserved and will
        flush to the new IO; calls already shipped to the dead node are
        gone — respawn re-runs the constructor, so the IO's state
        restarts from scratch regardless.
        """
        with self._outbox_cv:
            self.impl = new_impl
            self._sender_error = None
            self._lost = None
            self._outbox.clear()
            self._outbox_cv.notify_all()

    def repoint(self, new_impl) -> None:  # type: ignore[no-untyped-def]
        """Follow a live migration: swap the IO without losing work.

        Unlike :meth:`rebind` (crash respawn — calls shipped to the dead
        node are gone), a migrated IO carries the grain's state and its
        queued backlog, so the buffered outbox is kept and simply
        flushes to the new home.  The victim's forwarding shell keeps
        serving stragglers, which makes repointing an optimization —
        a grain already marked lost stays lost.
        """
        with self._outbox_cv:
            if self._lost is not None:
                return
            self.impl = new_impl
            self._outbox_cv.notify_all()

    def mark_lost(self, error: NodeLostError) -> None:
        """Poison the grain: every subsequent use raises *error*.

        Also discards pending work and wakes blocked waiters, so callers
        parked in :meth:`call`/:meth:`drain` fail promptly instead of
        waiting on a node that will never answer.
        """
        with self._outbox_cv:
            self._lost = error
            self._sender_error = None
            self._buffer = []
            self._buffer_method = None
            self._outbox.clear()
            self._outbox_cv.notify_all()

    def _with_recovery(self, attempt):  # type: ignore[no-untyped-def]
        try:
            return attempt()
        except NodeLostError:
            raise
        except OverloadError:
            # Shedding means the node is alive but saturated — the exact
            # opposite of a crash.  Probing/respawning here would add
            # load to an overloaded cluster, so surface it untouched.
            self.sheds += 1
            raise
        except (ScooppError, *_TRANSPORT_ERRORS) as exc:
            if not self._try_recover(exc):
                raise
            return attempt()

    def _try_recover(self, exc: BaseException) -> bool:
        """Ask the runtime to confirm node death and respawn; True = retry."""
        recoverer = self.recoverer
        if recoverer is None:
            return False
        # Sender failures surface wrapped in ScooppError; recover on the
        # root transport cause, not the wrapper.
        cause: BaseException = exc
        while (
            isinstance(cause, ScooppError)
            and not isinstance(cause, NodeLostError)
            and cause.__cause__ is not None
        ):
            cause = cause.__cause__
        from repro.remoting.resilience import is_transport_error

        if not is_transport_error(cause):
            return False
        return bool(recoverer(self, cause))

    # -- internals ---------------------------------------------------------

    def _ensure_usable(self) -> None:
        if self._lost is not None:
            raise self._lost
        if self._released:
            raise GrainError("proxy object has been released")
        if self._sender_error is not None:
            error, self._sender_error = self._sender_error, None
            if isinstance(error, OverloadError):
                # Keep the typed fail-fast signal: callers (and retry
                # policies) must see shedding as shedding, not as a
                # generic wrapped send failure.
                raise error
            raise ScooppError(
                f"asynchronous send failed: {error}"
            ) from error

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        method, self._buffer_method = self._buffer_method, None
        ctx, self._buffer_ctx = self._buffer_ctx, None
        tracer = active_tracer()
        if tracer is not None:
            tracer.instant(
                "po", "po.flush", method=method, calls=len(batch),
                grain=self.grain_id,
            )
        if len(batch) == 1:
            self._enqueue_locked(("single", method, batch[0], ctx))
        else:
            self._enqueue_locked(("batch", method, batch, ctx))

    def _enqueue_locked(self, item: tuple) -> None:
        self._outbox.append(item)
        self.batches_sent += 1
        if item[0] == "batch":
            self.batches += 1
        else:
            self.singles += 1
        self._outbox_cv.notify_all()

    def _wait_outbox_empty(self) -> None:
        with self._outbox_cv:
            while (
                self._outbox
                and self._sender_error is None
                and self._lost is None
            ):
                self._outbox_cv.wait()
            self._ensure_usable()

    def _send_loop(self) -> None:
        while True:
            with self._outbox_cv:
                while not self._outbox and not self._released:
                    if self._buffer:
                        # Auto-flush: a partial batch may only be
                        # *delayed*, never parked indefinitely.
                        age = _time.monotonic() - self._buffer_since
                        if age >= self.flush_after_s:
                            self._flush_locked()
                            continue
                        self._outbox_cv.wait(self.flush_after_s - age)
                    else:
                        self._outbox_cv.wait()
                if not self._outbox and self._released:
                    return
                kind, method, payload, ctx = self._outbox[0]
            try:
                # Re-activate the post-time trace context so the enqueue
                # rpc (and the remote io span behind it) chains to the
                # caller's span rather than to this sender thread.
                with activate(ctx):
                    if kind == "single":
                        args, kwargs = payload
                        self.impl.enqueue(method, args, kwargs)
                        calls = 1
                    else:
                        self._send_batch(method, payload)
                        calls = len(payload)
            except BaseException as exc:  # noqa: BLE001 - surfaced on next use
                with self._outbox_cv:
                    if isinstance(exc, OverloadError):
                        self.sheds += 1
                    self._sender_error = exc
                    self._outbox.clear()
                    self._outbox_cv.notify_all()
                continue
            if self.wire_observer is not None:
                nbytes = getattr(self.impl, "_parc_last_wire_bytes", 0)
                try:
                    self.wire_observer(nbytes, calls)
                except Exception:  # noqa: BLE001 - stats must never kill work
                    pass
            with self._outbox_cv:
                self._outbox.popleft()
                if not self._outbox:
                    self._outbox_cv.notify_all()

    def _send_batch(self, method: str, batch: list) -> None:
        """Ship one aggregate, columnar when the batch shape allows it.

        Columnar packing encodes the method name, trace header and
        argument schema once and each parameter as one contiguous column
        (Fig. 7's parameter array, transposed).  Heterogeneous batches —
        kwargs, mixed arity — fall back to the row form transparently.  A
        remote refusal (an older peer without ``enqueue_columns``) also
        falls back and disables columnar for this grain; the failed call
        enqueued nothing, so re-sending as rows cannot duplicate work.
        """
        if self.columnar:
            columns = pack_columns(batch, self._plan_for(method))
            if columns is not None:
                try:
                    self.impl.enqueue_columns(
                        method, len(batch), list(columns)
                    )
                    return
                except RemoteInvocationError:
                    self.columnar = False
        self.impl.enqueue_batch(method, batch)

    def _plan_for(self, method: str):  # type: ignore[no-untyped-def]
        try:
            return self._column_plans[method]
        except KeyError:
            func = getattr(self.impl_class, method, None)
            plan = method_column_plan(func) if callable(func) else None
            self._column_plans[method] = plan
            return plan

    def _maybe_retune(self, method: str) -> None:
        """Refresh max_calls/flush_after_s from the autotuner (locked).

        Consulted when a new aggregation buffer opens so the applied
        tuning matches the method about to be buffered; rate-limited so
        a hot posting loop costs one controller lookup per
        RETUNE_PERIOD_S, not per call.
        """
        tuner = self.tuner
        if tuner is None:
            return
        now = _time.monotonic()
        if now - self._tuning_stamp < self.RETUNE_PERIOD_S:
            return
        self._tuning_stamp = now
        try:
            tuning = tuner.decide_method(self.tuner_class or "", method)
        except Exception:  # noqa: BLE001 - tuning must never break posts
            return
        if tuning is None:
            return
        max_calls, flush_after_s = tuning
        if max_calls and int(max_calls) >= 1:
            self.max_calls = int(max_calls)
        if flush_after_s and flush_after_s > 0:
            self.flush_after_s = float(flush_after_s)


class ProxyObject:
    """Base class of generated PO classes.

    Construction consults the runtime's object manager (grain decision +
    placement, Fig. 5) and builds the grain; generated methods forward to
    it.  Runtime controls are ``parc_``-prefixed to stay clear of user
    method names:

    * ``parc_flush()`` — ship buffered asynchronous calls;
    * ``parc_wait()`` — block until all posted work has executed;
    * ``parc_release()`` — dispose the grain (flushes and drains first);
    * ``parc_is_local`` — True when the object was agglomerated.
    """

    #: Set on subclasses by make_parallel_class / the preprocessor.
    _parc_info: ParallelClassInfo | None = None

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        info = type(self)._parc_info
        if info is None:
            raise ScooppError(
                "ProxyObject subclass was not generated; use "
                "make_parallel_class or the preprocessor"
            )
        from repro.core.runtime import current_runtime

        runtime = current_runtime()
        self._parc_grain = runtime.create_grain(info, args, kwargs)

    def parc_delegate(self, method_name: str):  # type: ignore[no-untyped-def]
        """A :class:`~repro.remoting.delegates.Delegate` for one method.

        The PO equivalent of Fig. 4's ``RemoteAsyncDelegate``: lets a
        *synchronous* method run in background and deliver its value
        later::

            delegate = po.parc_delegate("summary")
            handle = delegate.begin_invoke()
            ...                               # overlap other work
            result = delegate.end_invoke(handle)
        """
        info = type(self)._parc_info
        if info is None or method_name not in info.method_kinds:
            raise ScooppError(
                f"{type(self).__name__} has no parallel method "
                f"{method_name!r}"
            )
        from repro.remoting.delegates import Delegate

        grain = self._parc_grain

        def call(*args: Any, **kwargs: Any) -> Any:
            return grain.call(method_name, args, kwargs)

        call.__name__ = method_name
        return Delegate(call)

    def parc_call_many(self, method_name: str, arg_tuples) -> list:  # type: ignore[no-untyped-def]
        """Invoke a synchronous method once per argument tuple, batched.

        ``po.parc_call_many("price", [(s, k) for s, k in work])`` ships
        the whole batch as one aggregate request and receives one
        aggregated ``returnN`` reply — N results for two wire frames
        instead of 2N.  Returns the results in order; if any individual
        call failed, raises :class:`~repro.errors.BatchCallError`
        carrying the successes and a per-index failure map.  Against an
        old peer the batch transparently degrades to per-call
        round-trips with identical semantics.
        """
        info = type(self)._parc_info
        if info is None or method_name not in info.method_kinds:
            raise ScooppError(
                f"{type(self).__name__} has no parallel method "
                f"{method_name!r}"
            )
        batch = [(tuple(args), {}) for args in arg_tuples]
        return self._parc_grain.call_many(method_name, batch)

    def parc_flush(self) -> None:
        self._parc_grain.flush()

    def parc_wait(self) -> None:
        self._parc_grain.drain()

    def parc_release(self) -> None:
        self._parc_grain.dispose()

    @property
    def parc_is_local(self) -> bool:
        return self._parc_grain.is_local

    def __repr__(self) -> str:
        info = type(self)._parc_info
        name = info.wire_name if info is not None else "?"
        kind = "local" if self._parc_grain.is_local else "remote"
        return f"<PO {name} ({kind} grain {self._parc_grain.grain_id})>"


def _make_async_method(name: str) -> Any:
    def method(self: ProxyObject, *args: Any, **kwargs: Any) -> None:
        self._parc_grain.post(name, args, kwargs)

    method.__name__ = name
    method.__qualname__ = name
    method.__doc__ = f"Asynchronous parallel call of {name} (no result)."
    return method


def _make_sync_method(name: str) -> Any:
    def method(self: ProxyObject, *args: Any, **kwargs: Any) -> Any:
        return self._parc_grain.call(name, args, kwargs)

    method.__name__ = name
    method.__qualname__ = name
    method.__doc__ = f"Synchronous parallel call of {name} (returns a value)."
    return method


_po_class_cache: dict[type, type] = {}
_po_class_lock = threading.Lock()


def make_parallel_class(cls: type) -> type:
    """Runtime equivalent of the preprocessor: generate *cls*'s PO class.

    ``make_parallel_class(PrimeServer)`` returns a class with
    ``PrimeServer``'s public interface whose instances are POs (Fig. 4's
    generated ``PrimeServer`` with the original renamed away).  Cached per
    class; tests assert it is behaviourally identical to the
    source-generated PO.
    """
    with _po_class_lock:
        cached = _po_class_cache.get(cls)
        if cached is not None:
            return cached
    info = parallel_class_table.by_class(cls)
    namespace: dict[str, Any] = {
        "_parc_info": info,
        "__doc__": f"Generated proxy-object class for {cls.__qualname__}.",
        "_parc_impl_class": cls,
    }
    for name, kind in info.method_kinds.items():
        if kind is MethodKind.ASYNC:
            namespace[name] = _make_async_method(name)
        else:
            namespace[name] = _make_sync_method(name)
    po_class = type(f"{cls.__name__}PO", (ProxyObject,), namespace)
    with _po_class_lock:
        _po_class_cache[cls] = po_class
    return po_class


class ProxyObjectSurrogate(Surrogate):
    """Lets PO references travel as method arguments (§3.1).

    "References to parallel objects may be copied or sent as a method
    argument" — a PO on the wire becomes (class wire name, IO ObjRef);
    the receiver rebuilds a PO of the same generated class whose grain
    points at the *same* implementation object.  Local (agglomerated)
    grains are first promoted to published implementation objects by the
    current runtime.
    """

    wire_name = "parc.scoopp.PORef"

    def applies_to(self, obj: Any) -> bool:
        return isinstance(obj, ProxyObject)

    def encode(self, obj: ProxyObject) -> dict[str, Any]:
        info = type(obj)._parc_info
        grain = obj._parc_grain
        if grain.is_local:
            from repro.core.runtime import current_runtime

            grain = current_runtime().promote_grain(obj)
        # Happens-before: ship pending asynchronous calls before the
        # reference leaves, so the receiver observes them (FIFO mailbox).
        grain.sync_outbox()
        if isinstance(grain.impl, RemoteProxy):
            ref = grain.impl._parc_objref
        else:
            # Reference-shortcut grain: the impl is a live local
            # ImplementationObject; publish it through the runtime.
            from repro.core.runtime import current_runtime

            ref = current_runtime().objref_for_impl(grain.impl)
        return {
            "class_name": info.wire_name,
            "uris": list(ref.uris),
            "host_id": ref.host_id,
            "max_calls": grain.max_calls,
        }

    def decode(self, state: dict[str, Any]) -> Any:
        from repro.core.runtime import current_runtime

        info = parallel_class_table.by_name(state["class_name"])
        po_class = make_parallel_class(info.cls)
        ref = ObjRef(
            uris=tuple(state["uris"]),
            type_hint="repro.core.impl.ImplementationObject",
            host_id=state.get("host_id", ""),
        )
        runtime = current_runtime()
        impl_proxy = runtime.proxy_for_objref(ref)
        po = po_class.__new__(po_class)
        grain = RemoteGrain(
            impl_proxy, max_calls=int(state.get("max_calls", 1))
        )
        # No creation spec travels with a reference, so the rebuilt grain
        # cannot be respawned — but tracking it means node death marks it
        # lost promptly instead of leaving calls to time out.  Passing
        # *info* still wires up columnar aggregates and byte feedback.
        runtime.adopt_grain(grain, info=info)
        po._parc_grain = grain
        return po


default_registry.register_surrogate(ProxyObjectSurrogate())
