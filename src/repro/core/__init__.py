"""SCOOPP / ParC# core: the paper's primary contribution.

The programming model (§3.1): **parallel objects** are active — they have
their own thread of control, are placed on cluster nodes by the runtime,
and are invoked through *asynchronous* method calls when no value is
returned and *synchronous* calls when one is.  **Passive objects** are
ordinary Python objects, copied between grains by the serialization layer.

The implementation (§3.2) mirrors the paper's architecture exactly:

* a **preprocessor** (:mod:`repro.core.preprocess`) rewrites ``@parallel``
  classes into generated **PO** (proxy object) classes — source-to-source,
  like the ParC++/ParC# preprocessor of Figs. 4–7 — with an equivalent
  runtime path (:func:`make_parallel_class`) for codegen-free use;
* **PO**s perform grain-size adaptation: *method-call aggregation* (buffer
  ``max_calls`` asynchronous invocations and ship one batch) and *object
  agglomeration* (create the IO locally and run serially when the runtime
  is removing parallelism);
* **IO**s (implementation objects) are the user's instances, hosted in an
  active-object container with a FIFO mailbox and a dedicated worker —
  "they specify explicit parallelism, having its own thread of control";
* one **OM** (object manager) per node performs placement, load exchange
  and grain decisions (:mod:`repro.cluster.node`).

Public entry points: :func:`repro.core.runtime.init` /
:func:`~repro.core.runtime.session` /
:func:`~repro.core.runtime.shutdown` (configured by
:class:`~repro.core.config.ParcConfig`), the :func:`parallel` decorator,
and :func:`make_parallel_class`.
"""

from repro.core.config import ParcConfig
from repro.sched import SchedulerConfig
from repro.telemetry import TelemetryConfig
from repro.core.model import (
    MethodKind,
    ParallelClassInfo,
    infer_method_kinds,
    parallel,
    parallel_class_table,
)
from repro.core.grain import AdaptiveGrainController, GrainDecision, GrainPolicy
from repro.core.impl import ImplementationObject
from repro.core.proxy_object import ProxyObject, make_parallel_class
from repro.core.preprocess import preprocess_module, preprocess_source
from repro.core.runtime import (
    ParcRuntime,
    current_runtime,
    init,
    new,
    session,
    shutdown,
)
from repro.core.naming import bind, lookup, names, rebind, unbind
from repro.core.patterns import Farm, Pipeline

__all__ = [
    "AdaptiveGrainController",
    "Farm",
    "Pipeline",
    "GrainDecision",
    "GrainPolicy",
    "ImplementationObject",
    "MethodKind",
    "ParallelClassInfo",
    "ParcConfig",
    "ParcRuntime",
    "ProxyObject",
    "SchedulerConfig",
    "TelemetryConfig",
    "bind",
    "current_runtime",
    "lookup",
    "names",
    "rebind",
    "unbind",
    "infer_method_kinds",
    "init",
    "make_parallel_class",
    "new",
    "parallel",
    "parallel_class_table",
    "preprocess_module",
    "preprocess_source",
    "session",
    "shutdown",
]
