"""Application dependence graph (§3.1).

"References to parallel objects may be copied or sent as a method
argument, which may lead to cycles in a dependence graph.  The
application's dependence graph becomes a DAG when this feature is not
used."  The tracker records two edge kinds:

* **creation** — creator grain → created grain (always acyclic on its own);
* **reference** — holder grain → referenced grain, added when a PO
  reference is passed through a remote call.

Nodes are implementation-object labels (their published paths, or
``local:<id>`` for agglomerated grains; ``main`` is the application entry
thread).  :meth:`DependenceTracker.is_dag` answers the paper's question
directly; cycles are reported for diagnostics.
"""

from __future__ import annotations

import threading
from typing import Iterable

import networkx as nx

MAIN = "main"


class DependenceTracker:
    """Thread-safe dependence graph over grain labels."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._graph = nx.DiGraph()
        self._graph.add_node(MAIN)

    def record_creation(self, parent: str, child: str) -> None:
        with self._lock:
            self._graph.add_edge(parent, child, kind="creation")

    def record_reference(self, holder: str, referenced: str) -> None:
        if holder == referenced:
            # Self-references are legal and always cyclic; record them so
            # is_dag reports the truth.
            pass
        with self._lock:
            self._graph.add_edge(holder, referenced, kind="reference")

    def is_dag(self) -> bool:
        with self._lock:
            return nx.is_directed_acyclic_graph(self._graph)

    def cycles(self) -> list[list[str]]:
        with self._lock:
            return [list(cycle) for cycle in nx.simple_cycles(self._graph)]

    def edges(self, kind: str | None = None) -> list[tuple[str, str]]:
        with self._lock:
            return [
                (source, dest)
                for source, dest, data in self._graph.edges(data=True)
                if kind is None or data.get("kind") == kind
            ]

    def nodes(self) -> Iterable[str]:
        with self._lock:
            return list(self._graph.nodes)

    def __len__(self) -> int:
        with self._lock:
            return self._graph.number_of_edges()
