"""Multi-process nodes: the cluster as separate OS processes over TCP.

The paper's platform ran each node as its own process on its own machine;
the in-process clusters of :mod:`repro.cluster.cluster` are convenient but
GIL-bound.  This module spawns **real worker processes**, each booting a
full node (remoting host + object manager + factory) on an ephemeral TCP
port.  Everything crosses real sockets with real serialization; compute
runs truly in parallel.

Worker lifecycle: the parent spawns ``_worker_main`` (spawn context, so
each worker is a fresh interpreter), the worker imports the application's
modules (registering its ``@parallel`` and ``@serializable`` classes —
the per-node "boot code" of §3.2), boots the node, reports its base URI,
receives the cluster directory, and serves until told to shut down.

Grain policies travel as specs (the adaptive controller holds locks and
cannot be pickled); each process builds its own controller, and the
object managers exchange statistics over the wire as usual.
"""

from __future__ import annotations

import importlib
import multiprocessing
import sys
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.grain import AdaptiveGrainController, GrainPolicy
from repro.errors import ScooppError
from repro.telemetry import TelemetryConfig

#: Seconds to wait for a worker to boot / shut down before escalating.
WORKER_BOOT_TIMEOUT_S = 30.0
WORKER_SHUTDOWN_TIMEOUT_S = 10.0


def grain_to_spec(grain: GrainPolicy | AdaptiveGrainController) -> tuple[str, dict]:
    """Portable description of a grain policy (picklable)."""
    if isinstance(grain, GrainPolicy):
        return (
            "static",
            {"agglomerate": grain.agglomerate, "max_calls": grain.max_calls},
        )
    if isinstance(grain, AdaptiveGrainController):
        return (
            "adaptive",
            {
                "overhead_s": grain.overhead_s,
                "pack_factor": grain.pack_factor,
                "agglomerate_factor": grain.agglomerate_factor,
                "max_calls_cap": grain.max_calls_cap,
                "min_samples": grain.min_samples,
                "bootstrap_max_calls": grain.bootstrap_max_calls,
                "ewma_alpha": grain.ewma_alpha,
            },
        )
    raise ScooppError(f"unknown grain policy type {type(grain).__qualname__}")


def grain_from_spec(spec: tuple[str, dict]) -> GrainPolicy | AdaptiveGrainController:
    """Rebuild a grain policy from its spec (in the worker process)."""
    kind, params = spec
    if kind == "static":
        return GrainPolicy(**params)
    if kind == "adaptive":
        return AdaptiveGrainController(**params)
    raise ScooppError(f"unknown grain spec kind {kind!r}")


@dataclass
class WorkerConfig:
    """Everything a worker process needs to boot its node."""

    index: int
    modules: tuple[str, ...]
    grain_spec: tuple[str, dict]
    placement_name: str
    dispatch_pool_size: int = 16
    extra_sys_path: tuple[str, ...] = field(default_factory=tuple)
    telemetry: TelemetryConfig | None = None
    #: ``"shm"`` makes the worker dial same-node peers over shared
    #: memory and serve a hidden shm listener next to its TCP port.
    same_node_transport: str | None = None
    #: Flow-control knobs, threaded verbatim into the worker's Node
    #: (see :class:`~repro.core.config.ParcConfig`).
    mailbox_depth: int = 0
    priority: dict | None = None
    shed_policy: str | None = None
    #: Inline execution of sync calls against idle mailboxes.
    sync_fastpath: bool = True


def _worker_main(config: WorkerConfig, ready, commands) -> None:  # type: ignore[no-untyped-def]
    """Entry point of one worker process (top-level: spawn-importable)."""
    # Make the parent's application modules importable, then import them:
    # this is the node "boot code" that registers factories/classes (§3.2).
    for path in config.extra_sys_path:
        if path not in sys.path:
            sys.path.insert(0, path)
    try:
        for module_name in config.modules:
            importlib.import_module(module_name)

        from repro.channels import create as create_channel
        from repro.channels.services import ChannelServices
        from repro.cluster.node import Node
        from repro.cluster.placement import make_placement

        services = ChannelServices()
        client_kind = (
            "samenode+tcp" if config.same_node_transport == "shm" else "tcp"
        )
        services.register_channel(create_channel(client_kind))
        node = Node(
            index=config.index,
            channel=create_channel("tcp"),
            authority="127.0.0.1:0",
            services=services,
            grain=grain_from_spec(config.grain_spec),
            placement=make_placement(config.placement_name),
            dispatch_pool_size=config.dispatch_pool_size,
            telemetry=config.telemetry,
            mailbox_depth=config.mailbox_depth,
            priority=config.priority,
            shed_policy=config.shed_policy,
            sync_fastpath=config.sync_fastpath,
        )
        if config.same_node_transport == "shm":
            # Hidden backplane (see Cluster.__init__): serve the same
            # host over shm under the worker's TCP authority so the
            # parent and sibling processes on this machine skip the
            # wire; the shm scheme never appears in the worker's URIs.
            node.host.listen(
                create_channel("shm"),
                node.base_uri.split("://", 1)[1],
                advertise=False,
            )
    except BaseException as exc:  # noqa: BLE001 - boot failure report
        ready.put(("error", f"{type(exc).__name__}: {exc}"))
        return
    ready.put(("ok", node.base_uri))

    # Install a worker-side runtime so nested creations and PO-reference
    # decoding work inside this process.
    from repro.core import runtime as runtime_module
    from repro.core.runtime import ParcRuntime

    runtime_module._runtime = ParcRuntime(_WorkerCluster(node, services))

    while True:
        command = commands.get()
        if command is None or command[0] == "shutdown":
            break
        if command[0] == "set_directory":
            node.om.set_directory(command[1])
            ready.put(("ok", "directory"))
        elif command[0] == "stats":
            ready.put(("ok", node.stats()))
        else:  # pragma: no cover - defensive
            ready.put(("error", f"unknown command {command[0]!r}"))
    node.close()
    services.close_all()


class _WorkerCluster:
    """Single-node cluster view installed inside a worker process."""

    def __init__(self, node, services) -> None:  # type: ignore[no-untyped-def]
        self.nodes = [node]
        self.services = services

    @property
    def home_node(self):  # type: ignore[no-untyped-def]
        return self.nodes[0]

    def node_by_uri(self, base_uri: str):  # type: ignore[no-untyped-def]
        node = self.nodes[0]
        return node if node.base_uri == base_uri else None

    def total_ios(self) -> int:
        return self.nodes[0].io_count()

    def stats(self) -> list[dict]:
        return [self.nodes[0].stats()]

    def collect_telemetry(self) -> dict:
        tel = self.nodes[0].telemetry
        return {
            tel.node_label(): {
                "events": tel.trace_events(),
                "metrics": tel.metrics_export(),
                "dropped": tel.dropped_events(),
            }
        }

    def close(self) -> None:
        return None  # lifecycle owned by _worker_main


class ProcessNodeHandle:
    """Parent-side handle to one spawned worker node."""

    def __init__(
        self,
        config: WorkerConfig,
        context: multiprocessing.context.BaseContext,
    ) -> None:
        self.index = config.index
        self._ready = context.Queue()
        self._commands = context.Queue()
        self.process = context.Process(
            target=_worker_main,
            args=(config, self._ready, self._commands),
            name=f"parc-worker-{config.index}",
            daemon=True,
        )
        self.process.start()
        status, payload = self._ready.get(timeout=WORKER_BOOT_TIMEOUT_S)
        if status != "ok":
            self.process.join(timeout=WORKER_SHUTDOWN_TIMEOUT_S)
            raise ScooppError(f"worker {config.index} failed to boot: {payload}")
        self.base_uri: str = payload

    def set_directory(self, directory: Sequence[str]) -> None:
        self._commands.put(("set_directory", list(directory)))
        status, payload = self._ready.get(timeout=WORKER_BOOT_TIMEOUT_S)
        if status != "ok":  # pragma: no cover - defensive
            raise ScooppError(f"worker {self.index}: {payload}")

    def stats(self) -> dict:
        self._commands.put(("stats",))
        status, payload = self._ready.get(timeout=WORKER_BOOT_TIMEOUT_S)
        if status != "ok":  # pragma: no cover - defensive
            raise ScooppError(f"worker {self.index}: {payload}")
        return payload

    def shutdown(self) -> None:
        if not self.process.is_alive():
            return
        try:
            self._commands.put(("shutdown",))
            self.process.join(timeout=WORKER_SHUTDOWN_TIMEOUT_S)
        finally:
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.terminate()
                self.process.join(timeout=5.0)


def spawn_workers(
    count: int,
    first_index: int,
    modules: Sequence[str],
    grain: GrainPolicy | AdaptiveGrainController,
    placement_name: str,
    dispatch_pool_size: int,
    telemetry: TelemetryConfig | None = None,
    same_node_transport: str | None = None,
    mailbox_depth: int = 0,
    priority: dict | None = None,
    shed_policy: str | None = None,
    sync_fastpath: bool = True,
) -> list[ProcessNodeHandle]:
    """Spawn *count* worker nodes; returns their handles (booted)."""
    context = multiprocessing.get_context("spawn")
    spec = grain_to_spec(grain)
    sys_paths = tuple(path for path in sys.path if path)
    handles: list[ProcessNodeHandle] = []
    try:
        for offset in range(count):
            config = WorkerConfig(
                index=first_index + offset,
                modules=tuple(modules),
                grain_spec=spec,
                placement_name=placement_name,
                dispatch_pool_size=dispatch_pool_size,
                extra_sys_path=sys_paths,
                telemetry=telemetry,
                same_node_transport=same_node_transport,
                mailbox_depth=mailbox_depth,
                priority=priority,
                shed_policy=shed_policy,
                sync_fastpath=sync_fastpath,
            )
            handles.append(ProcessNodeHandle(config, context))
    except Exception:
        for handle in handles:
            handle.shutdown()
        raise
    return handles
