"""Cluster runtime: nodes, object managers, factories, placement.

The RTS layout of the paper's Fig. 3: "the application entry code creates
one instance of the OM on each processing node"; each node also registers
an object factory in its boot code (§3.2: "object factories can be
automatically registered in the boot code of each node").

Two execution modes share all code above the channel:

* ``loopback`` — nodes are in-process endpoints over the loopback channel
  (deterministic, fast; what tests and simulated benches use);
* ``tcp`` — nodes listen on real TCP sockets (what the examples use to
  demonstrate actual cross-endpoint traffic).
"""

from repro.cluster.placement import (
    LeastLoadedPlacement,
    LegacyPolicyAdapter,
    LocalityAwarePlacement,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    coerce_policy,
    make_placement,
)
from repro.cluster.node import Node, NodeFactory, ObjectManager
from repro.cluster.cluster import Cluster
from repro.sched import ClusterView, NodeView, SchedulerConfig

__all__ = [
    "Cluster",
    "ClusterView",
    "LeastLoadedPlacement",
    "LegacyPolicyAdapter",
    "LocalityAwarePlacement",
    "Node",
    "NodeFactory",
    "NodeView",
    "ObjectManager",
    "PlacementPolicy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "SchedulerConfig",
    "coerce_policy",
    "make_placement",
]
