"""Cluster: boots N nodes and wires their object managers together.

The "application entry code" of §3.2: create one OM per node, register the
factories in each node's boot code, and hand every OM the cluster
directory so they can exchange loads and statistics.
"""

from __future__ import annotations

import uuid
from typing import Literal

from repro.channels import LoopbackChannel, TcpChannel
from repro.channels.services import ChannelServices
from repro.core.grain import AdaptiveGrainController, GrainPolicy
from repro.cluster.node import Node
from repro.cluster.placement import PlacementPolicy, make_placement
from repro.errors import ScooppError

ChannelKind = Literal["loopback", "tcp"]


class Cluster:
    """N in-process nodes talking over loopback or real TCP.

    All nodes share one :class:`ChannelServices` (the "network"), so a
    proxy created anywhere in the process can reach any node.  Node 0 is
    the *home node*: the node whose OM serves creations made from the
    application's main thread (creations made inside parallel methods go
    through the executing node's OM).
    """

    def __init__(
        self,
        num_nodes: int,
        channel_kind: ChannelKind = "loopback",
        grain: GrainPolicy | AdaptiveGrainController | None = None,
        placement: PlacementPolicy | str = "round_robin",
        dispatch_pool_size: int = 16,
        worker_processes: int = 0,
        worker_modules: tuple[str, ...] = (),
    ) -> None:
        """*worker_processes* additional nodes run as separate OS
        processes over TCP (see :mod:`repro.cluster.proc`); they import
        *worker_modules* at boot to register the application's parallel
        classes.  Process workers force ``channel_kind="tcp"``."""
        if num_nodes < 1:
            raise ScooppError(f"cluster needs >= 1 node, got {num_nodes}")
        if channel_kind not in ("loopback", "tcp"):
            raise ScooppError(f"unknown channel kind {channel_kind!r}")
        if worker_processes < 0:
            raise ScooppError("worker_processes cannot be negative")
        if worker_processes and channel_kind != "tcp":
            raise ScooppError(
                "process workers speak TCP; use channel_kind='tcp'"
            )
        self.num_nodes = num_nodes
        self.channel_kind = channel_kind
        self.grain = grain if grain is not None else GrainPolicy()
        if isinstance(placement, str):
            placement = make_placement(placement)
        self.placement = placement
        self.services = ChannelServices()
        if channel_kind == "loopback":
            self.services.register_channel(LoopbackChannel())
        else:
            self.services.register_channel(TcpChannel())
        run_id = uuid.uuid4().hex[:8]
        self.nodes: list[Node] = []
        try:
            for index in range(num_nodes):
                if channel_kind == "loopback":
                    channel = LoopbackChannel()
                    authority = f"parc-{run_id}-n{index}"
                else:
                    channel = TcpChannel()
                    authority = "127.0.0.1:0"
                self.nodes.append(
                    Node(
                        index=index,
                        channel=channel,
                        authority=authority,
                        services=self.services,
                        grain=self.grain,
                        placement=self.placement,
                        dispatch_pool_size=dispatch_pool_size,
                    )
                )
        except Exception:
            self.close()
            raise
        self.worker_handles = []
        if worker_processes:
            from repro.cluster.proc import spawn_workers

            placement_name = getattr(self.placement, "name", "round_robin")
            try:
                self.worker_handles = spawn_workers(
                    count=worker_processes,
                    first_index=num_nodes,
                    modules=worker_modules,
                    grain=self.grain,
                    placement_name=placement_name,
                    dispatch_pool_size=dispatch_pool_size,
                )
            except Exception:
                self.close()
                raise
        directory = [node.base_uri for node in self.nodes] + [
            handle.base_uri for handle in self.worker_handles
        ]
        for node in self.nodes:
            node.om.set_directory(directory)
        for handle in self.worker_handles:
            handle.set_directory(directory)
        self._closed = False

    @property
    def home_node(self) -> Node:
        return self.nodes[0]

    def node_by_uri(self, base_uri: str) -> Node | None:
        for node in self.nodes:
            if node.base_uri == base_uri:
                return node
        return None

    def total_ios(self) -> int:
        local = sum(node.io_count() for node in self.nodes)
        remote = sum(
            handle.stats()["ios"]
            for handle in getattr(self, "worker_handles", [])
        )
        return local + remote

    def stats(self) -> list[dict]:
        rows = [node.stats() for node in self.nodes]
        rows.extend(
            handle.stats() for handle in getattr(self, "worker_handles", [])
        )
        return rows

    def close(self) -> None:
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for handle in getattr(self, "worker_handles", []):
            try:
                handle.shutdown()
            except Exception:  # noqa: BLE001 - teardown must finish
                pass
        for node in self.nodes:
            try:
                node.close()
            except Exception:  # noqa: BLE001 - teardown must finish
                pass
        self.services.close_all()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
