"""Cluster: boots N nodes and wires their object managers together.

The "application entry code" of §3.2: create one OM per node, register the
factories in each node's boot code, and hand every OM the cluster
directory so they can exchange loads and statistics.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING, Any, Literal

from repro.channels.base import Channel
from repro.channels.breaker import BreakerPolicy
from repro.channels.factory import available_kinds, create as create_channel
from repro.channels.services import ChannelServices
from repro.core.grain import AdaptiveGrainController, GrainPolicy
from repro.cluster.node import Node
from repro.cluster.placement import PlacementPolicy, coerce_policy
from repro.errors import ScooppError
from repro.sched import PlannedMove, RebalancePlanner, SchedulerConfig
from repro.telemetry import (
    MetricsRegistry,
    TelemetryConfig,
    get_global_tracer,
    get_sample_rate,
    set_global_tracer,
    set_sample_rate,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos import ChaosController, FaultPlan

#: ``chaos+<base>`` routes every call through a
#: :class:`~repro.chaos.FaultyChannel` fed by the cluster's fault plan
#: and controller — the fault-injection configuration of the test suite.
ChannelKind = Literal[
    "loopback",
    "tcp",
    "aio",
    "shm",
    "chaos+loopback",
    "chaos+tcp",
    "chaos+aio",
    "chaos+shm",
]

_BASE_KINDS = ("loopback", "tcp", "aio", "shm")

#: Base kinds whose channels take the ``fastpath=`` constructor knob.
_FASTPATH_KINDS = ("loopback", "tcp", "aio", "shm")

#: Base kinds the shm same-node backplane can ride alongside (the peer
#: must be dialled by a socket authority for the handshake-socket probe
#: to identify it).
_SAMENODE_BASE_KINDS = ("tcp", "aio")


class Cluster:
    """N in-process nodes talking over loopback or real TCP.

    All nodes share one :class:`ChannelServices` (the "network"), so a
    proxy created anywhere in the process can reach any node.  Node 0 is
    the *home node*: the node whose OM serves creations made from the
    application's main thread (creations made inside parallel methods go
    through the executing node's OM).
    """

    def __init__(
        self,
        num_nodes: int,
        channel_kind: ChannelKind = "loopback",
        grain: GrainPolicy | AdaptiveGrainController | None = None,
        placement: PlacementPolicy | str = "round_robin",
        dispatch_pool_size: int = 16,
        worker_processes: int = 0,
        worker_modules: tuple[str, ...] = (),
        heartbeat_s: float | None = None,
        breaker: BreakerPolicy | None = None,
        chaos_plan: "FaultPlan | None" = None,
        chaos_controller: "ChaosController | None" = None,
        telemetry: TelemetryConfig | None = None,
        wire_fastpath: bool = True,
        sync_fastpath: bool = True,
        same_node_transport: str | None = None,
        mailbox_depth: int = 0,
        priority: dict | None = None,
        shed_policy: str | None = None,
        elastic: tuple | None = None,
        elastic_interval_s: float = 1.0,
        scheduler: SchedulerConfig | None = None,
    ) -> None:
        """*worker_processes* additional nodes run as separate OS
        processes over TCP (see :mod:`repro.cluster.proc`); they import
        *worker_modules* at boot to register the application's parallel
        classes.  Process workers force ``channel_kind="tcp"``.

        *heartbeat_s* starts a failure-detector loop on every node's
        object manager.  *breaker* wraps the shared client channel in a
        per-authority circuit breaker.  *chaos_plan* /
        *chaos_controller* feed the fault-injection layer and require a
        ``chaos+*`` channel kind.  *telemetry* enables distributed
        tracing and per-node metrics (see
        :class:`~repro.telemetry.TelemetryConfig`).

        *same_node_transport* = ``"shm"`` gives every node a hidden
        shared-memory listener on its socket authority and wraps the
        client channel in a :class:`~repro.shm.SameNodeChannel`, so
        calls between co-located processes ride ring buffers while
        remote peers stay on the wire — no URI or directory changes.

        *mailbox_depth*, *priority* and *shed_policy* are the flow-control
        knobs, threaded verbatim into every node (in-process and worker
        alike); see :class:`~repro.core.config.ParcConfig`.  *elastic*
        = ``(min, max)`` starts a control loop that samples cluster
        queue depth and method-latency p99 every *elastic_interval_s*
        seconds and spawns or retires worker processes within those
        bounds (requires ``worker_processes >= 1``); the initial worker
        count is clamped into the bounds.

        *scheduler* is a :class:`~repro.sched.SchedulerConfig` bundling
        the grain policy, placement policy and the adaptive-rebalancing
        knobs (work stealing, live migration).  It subsumes the flat
        *grain*/*placement* arguments: passing a conflicting value both
        ways is an error, while a flat value with no scheduler
        counterpart is folded in.  When ``scheduler.work_stealing`` is
        on, a daemon loop samples every node's load report each
        ``rebalance_interval_s`` seconds and live-migrates queued grains
        off overloaded nodes.
        """
        if num_nodes < 1:
            raise ScooppError(f"cluster needs >= 1 node, got {num_nodes}")
        chaos = channel_kind.startswith("chaos+")
        base_kind = channel_kind.split("+", 1)[1] if chaos else channel_kind
        if base_kind not in _BASE_KINDS or base_kind not in available_kinds():
            raise ScooppError(f"unknown channel kind {channel_kind!r}")
        if (chaos_plan is not None or chaos_controller is not None) and not chaos:
            raise ScooppError(
                "chaos_plan/chaos_controller need a chaos+* channel kind"
            )
        if worker_processes < 0:
            raise ScooppError("worker_processes cannot be negative")
        if worker_processes and channel_kind != "tcp":
            raise ScooppError(
                "process workers speak TCP; use channel_kind='tcp'"
            )
        if same_node_transport not in (None, "shm"):
            raise ScooppError(
                "same_node_transport must be None or 'shm', got "
                f"{same_node_transport!r}"
            )
        if same_node_transport and base_kind not in _SAMENODE_BASE_KINDS:
            raise ScooppError(
                "same_node_transport='shm' needs a socket channel kind "
                f"({', '.join(_SAMENODE_BASE_KINDS)}); "
                f"got {channel_kind!r}"
            )
        if elastic is not None:
            elastic = tuple(elastic)
            if len(elastic) != 2 or elastic[0] < 1 or elastic[1] < elastic[0]:
                raise ScooppError(
                    f"elastic bounds need 1 <= min <= max, got {elastic!r}"
                )
            if worker_processes < 1:
                raise ScooppError(
                    "elastic scaling needs worker_processes >= 1"
                )
            # The initial population must respect the bounds it will be
            # scaled within.
            worker_processes = max(elastic[0], min(worker_processes, elastic[1]))
        self.num_nodes = num_nodes
        self.channel_kind = channel_kind
        self.heartbeat_s = heartbeat_s
        self.same_node_transport = same_node_transport
        self.mailbox_depth = mailbox_depth
        self.priority = priority
        self.shed_policy = shed_policy
        self.elastic = elastic
        # Zero-copy wire fast path; every bundled transport that has a
        # codec path takes the knob (http keeps its legacy framing).
        self.wire_fastpath = wire_fastpath
        # Inline execution of sync calls against idle mailboxes (see
        # ParcConfig.sync_fastpath); threaded into every node's IOs.
        self.sync_fastpath = sync_fastpath
        fastpath_opts = (
            {"fastpath": wire_fastpath}
            if base_kind in _FASTPATH_KINDS
            else {}
        )
        self.metrics = MetricsRegistry()
        self.chaos_controller = chaos_controller
        self.chaos_plan = chaos_plan
        self.telemetry = (
            telemetry if telemetry is not None else TelemetryConfig()
        )
        # Scheduling knobs: one SchedulerConfig is the source of truth.
        # The flat grain/placement arguments remain the short spelling
        # and fold into it; naming both with different values is a
        # conflict, not a silent override.
        if scheduler is None:
            scheduler = SchedulerConfig(grain=grain, placement=placement)
        else:
            if (
                grain is not None
                and scheduler.grain is not None
                and grain is not scheduler.grain
            ):
                raise ScooppError(
                    "grain given both directly and via SchedulerConfig"
                )
            flat_placement_set = placement != "round_robin"
            sched_placement_set = scheduler.placement != "round_robin"
            if (
                flat_placement_set
                and sched_placement_set
                and placement != scheduler.placement
            ):
                raise ScooppError(
                    "placement given both directly and via SchedulerConfig"
                )
            updates: dict[str, Any] = {}
            if scheduler.grain is None and grain is not None:
                updates["grain"] = grain
            if flat_placement_set and not sched_placement_set:
                updates["placement"] = placement
            if updates:
                scheduler = dc_replace(scheduler, **updates)
        self.sched_config = scheduler
        self.grain = (
            scheduler.grain if scheduler.grain is not None else GrainPolicy()
        )
        self.placement = coerce_policy(scheduler.placement)
        self.services = ChannelServices()
        # The shared client channel every proxy dials through, built from
        # the scheme registry.  Stacking order matters: the breaker sits
        # outside the chaos layer so injected faults count toward
        # tripping it, exactly like organic ones; the same-node router
        # sits innermost so chaos and breaker apply to shm-routed calls
        # exactly as they do to wire calls.
        client_kind = base_kind
        if same_node_transport:
            client_kind = f"samenode+{client_kind}"
        if chaos:
            client_kind = f"chaos+{client_kind}"
        if breaker is not None:
            client_kind = f"breaker+{client_kind}"
        client: Channel = create_channel(
            client_kind,
            chaos_plan=chaos_plan,
            chaos_controller=chaos_controller,
            breaker_policy=breaker,
            metrics=self.metrics,
            **fastpath_opts,
        )
        self.client_channel = client
        self.services.register_channel(client)
        run_id = uuid.uuid4().hex[:8]
        self.nodes: list[Node] = []
        self._backplane_channels: list[Channel] = []
        self._installed_tracer = None
        self._prev_sample_rate: float | None = None
        try:
            for index in range(num_nodes):
                if base_kind == "loopback":
                    authority = f"parc-{run_id}-n{index}"
                elif base_kind == "shm":
                    authority = "auto"
                else:
                    authority = "127.0.0.1:0"
                # Server-side chaos wrapper: zero-fault, only contributes
                # the chaos+ scheme so node URIs route through the
                # (fault-injecting) shared client channel above.
                channel = create_channel(
                    f"chaos+{base_kind}" if chaos else base_kind,
                    metrics=self.metrics if chaos else None,
                    **fastpath_opts,
                )
                node = Node(
                    index=index,
                    channel=channel,
                    authority=authority,
                    services=self.services,
                    grain=self.grain,
                    placement=self.placement,
                    dispatch_pool_size=dispatch_pool_size,
                    metrics=self.metrics,
                    telemetry=self.telemetry,
                    mailbox_depth=mailbox_depth,
                    priority=priority,
                    shed_policy=shed_policy,
                    sync_fastpath=sync_fastpath,
                )
                self.nodes.append(node)
                if same_node_transport == "shm":
                    # Hidden backplane: a second listener serving the
                    # same host under the node's *socket* authority, so
                    # the SameNodeChannel's handshake-socket probe finds
                    # it.  advertise=False keeps the shm scheme out of
                    # node URIs — remote peers never learn about it.
                    from repro.shm import ShmChannel

                    backplane = ShmChannel(
                        fastpath=wire_fastpath, metrics=self.metrics
                    )
                    bound = node.base_uri.split("://", 1)[1]
                    node.host.listen(backplane, bound, advertise=False)
                    self._backplane_channels.append(backplane)
        except Exception:
            self.close()
            raise
        self.worker_handles = []
        # Spawn ingredients, kept for elastic scale-out re-spawns.
        self._worker_modules = tuple(worker_modules)
        self._dispatch_pool_size = dispatch_pool_size
        self._placement_name = getattr(self.placement, "name", "round_robin")
        if worker_processes:
            from repro.cluster.proc import spawn_workers

            try:
                self.worker_handles = spawn_workers(
                    count=worker_processes,
                    first_index=num_nodes,
                    modules=worker_modules,
                    grain=self.grain,
                    placement_name=self._placement_name,
                    dispatch_pool_size=dispatch_pool_size,
                    telemetry=self.telemetry,
                    same_node_transport=same_node_transport,
                    mailbox_depth=mailbox_depth,
                    priority=priority,
                    shed_policy=shed_policy,
                    sync_fastpath=sync_fastpath,
                )
            except Exception:
                self.close()
                raise
        directory = [node.base_uri for node in self.nodes] + [
            handle.base_uri for handle in self.worker_handles
        ]
        for node in self.nodes:
            node.om.set_directory(directory)
        for handle in self.worker_handles:
            handle.set_directory(directory)
        if heartbeat_s is not None:
            for node in self.nodes:
                node.om.start_heartbeat(heartbeat_s)
        if self.telemetry.enabled:
            # The application's main thread records against the home
            # node's tracer (its spans show in the home node's lane).
            # Both installs are restored by close().
            self._prev_sample_rate = get_sample_rate()
            set_sample_rate(self.telemetry.sample_rate)
            self._installed_tracer = self.home_node.telemetry.tracer
            set_global_tracer(self._installed_tracer)
        # Elastic worker scaling: a daemon loop samples cluster pressure
        # and spawns/retires worker processes within the elastic bounds.
        self._elastic_lock = threading.Lock()
        self._elastic_stop = threading.Event()
        self._elastic_thread: threading.Thread | None = None
        self._next_worker_index = num_nodes + len(self.worker_handles)
        if elastic is not None:
            from repro.flow import ElasticController, ElasticPolicy

            self._elastic_controller = ElasticController(
                ElasticPolicy(min_workers=elastic[0], max_workers=elastic[1])
            )
            self._elastic_interval_s = elastic_interval_s
            self.metrics.gauge(
                "cluster.elastic.workers", "worker processes currently live"
            ).set(len(self.worker_handles))
            self._elastic_thread = threading.Thread(
                target=self._elastic_loop, name="parc-elastic", daemon=True
            )
            self._elastic_thread.start()
        # Adaptive rebalancing: a daemon loop gathers per-node scheduler
        # reports, asks the planner for moves, and executes each as a
        # live grain migration (see repro.sched).
        self._sched_lock = threading.Lock()
        self._sched_stop = threading.Event()
        self._sched_thread: threading.Thread | None = None
        self._sched_counters = {
            "cycles": 0,
            "steals": 0,
            "migrations": 0,
            "migration_failures": 0,
            "calls_moved": 0,
            "lost_calls": 0,
        }
        self._migration_callbacks: list[Any] = []
        self._inflight_migrations: set[str] = set()
        self._planner = RebalancePlanner(self.sched_config)
        if self.sched_config.work_stealing:
            self._sched_thread = threading.Thread(
                target=self._sched_loop, name="parc-sched", daemon=True
            )
            self._sched_thread.start()
        self._closed = False

    @property
    def home_node(self) -> Node:
        return self.nodes[0]

    def node_by_uri(self, base_uri: str) -> Node | None:
        for node in self.nodes:
            if node.base_uri == base_uri:
                return node
        return None

    def total_ios(self) -> int:
        local = sum(node.io_count() for node in self.nodes)
        remote = sum(
            handle.stats()["ios"]
            for handle in getattr(self, "worker_handles", [])
        )
        return local + remote

    def stats(self) -> list[dict]:
        rows = [node.stats() for node in self.nodes]
        rows.extend(
            handle.stats() for handle in getattr(self, "worker_handles", [])
        )
        return rows

    def collect_telemetry(self) -> dict[str, dict[str, Any]]:
        """Pull every node's trace buffer and metrics into one mapping.

        Keys are node base URIs; values hold ``events`` (trace-event
        dicts), ``metrics`` (a :meth:`MetricsRegistry.export` document)
        and ``dropped`` (events lost to the ring buffer).  In-process
        nodes are read directly; process workers are scraped over the
        wire through their published ``/telemetry`` object, best-effort
        — a worker that already died simply has no entry.
        """
        out: dict[str, dict[str, Any]] = {}
        for node in self.nodes:
            tel = node.telemetry
            out[tel.node_label()] = {
                "events": tel.trace_events(),
                "metrics": tel.metrics_export(),
                "dropped": tel.dropped_events(),
            }
        for handle in getattr(self, "worker_handles", []):
            try:
                proxy = self.home_node.make_proxy(
                    f"{handle.base_uri}/telemetry"
                )
                out[proxy.node_label()] = {
                    "events": proxy.trace_events(),
                    "metrics": proxy.metrics_export(),
                    "dropped": proxy.dropped_events(),
                }
            except Exception:  # noqa: BLE001 - collection is best-effort
                continue
        return out

    # -- elastic workers ---------------------------------------------------

    def _elastic_loop(self) -> None:
        """Sampling thread: pressure in, scale decisions out.

        Every error is swallowed — a failed sample (a worker mid-death,
        a stats timeout) must never kill the control loop, only skip the
        tick.
        """
        while not self._elastic_stop.wait(self._elastic_interval_s):
            try:
                self._elastic_tick()
            except Exception:  # noqa: BLE001 - the loop must survive
                pass

    def _elastic_tick(self) -> None:
        """One control-loop sample: observe pressure, maybe act."""
        queued = 0
        p99: float | None = None
        for row in self.stats():
            queued += row.get("queued", 0)
            row_p99 = row.get("p99_s")
            if row_p99 is not None and (p99 is None or row_p99 > p99):
                p99 = row_p99
        with self._elastic_lock:
            workers = len(self.worker_handles)
        self.metrics.gauge(
            "cluster.elastic.workers", "worker processes currently live"
        ).set(workers)
        decision = self._elastic_controller.observe(workers, queued, p99)
        if decision == "out":
            self._scale_out(queued, p99)
        elif decision == "in":
            self._scale_in(queued, p99)

    def _scale_out(self, queued: int, p99: float | None) -> None:
        """Spawn one more worker process and publish it to the cluster."""
        from repro.cluster.proc import spawn_workers

        with self._elastic_lock:
            index = self._next_worker_index
            self._next_worker_index += 1  # indices are never reused
        handles = spawn_workers(
            count=1,
            first_index=index,
            modules=self._worker_modules,
            grain=self.grain,
            placement_name=self._placement_name,
            dispatch_pool_size=self._dispatch_pool_size,
            telemetry=self.telemetry,
            same_node_transport=self.same_node_transport,
            mailbox_depth=self.mailbox_depth,
            priority=self.priority,
            shed_policy=self.shed_policy,
            sync_fastpath=self.sync_fastpath,
        )
        with self._elastic_lock:
            self.worker_handles.extend(handles)
            workers = len(self.worker_handles)
        self._redistribute_directory()
        self.metrics.counter(
            "cluster.elastic.scale_out", "elastic scale-out actions"
        ).inc()
        self.metrics.gauge(
            "cluster.elastic.workers", "worker processes currently live"
        ).set(workers)
        self._elastic_instant(
            "cluster.elastic.scale_out",
            worker=handles[0].base_uri,
            workers=workers,
            queued=queued,
            p99_s=p99,
        )

    def _scale_in(self, queued: int, p99: float | None) -> None:
        """Retire the newest worker process.

        The directory is republished *before* the worker is told to shut
        down so no new placement lands on it; then the survivors' object
        managers get a ``note_dead`` for its URI, which fires the normal
        node-down machinery — restartable grains stranded on the retiree
        respawn on the remaining nodes.
        """
        with self._elastic_lock:
            if not self.worker_handles:
                return
            handle = self.worker_handles.pop()
            workers = len(self.worker_handles)
        self._redistribute_directory()
        try:
            handle.shutdown()
        except Exception:  # noqa: BLE001 - retirement is best-effort
            pass
        for node in self.nodes:
            node.om.note_dead(handle.base_uri)
        self.metrics.counter(
            "cluster.elastic.scale_in", "elastic scale-in actions"
        ).inc()
        self.metrics.gauge(
            "cluster.elastic.workers", "worker processes currently live"
        ).set(workers)
        self._elastic_instant(
            "cluster.elastic.scale_in",
            worker=handle.base_uri,
            workers=workers,
            queued=queued,
            p99_s=p99,
        )

    def _redistribute_directory(self) -> None:
        """Push the current node+worker directory to every object manager."""
        with self._elastic_lock:
            handles = list(self.worker_handles)
        directory = [node.base_uri for node in self.nodes] + [
            handle.base_uri for handle in handles
        ]
        for node in self.nodes:
            node.om.set_directory(directory)
        for handle in handles:
            try:
                handle.set_directory(directory)
            except Exception:  # noqa: BLE001 - worker may be mid-death
                pass

    def _elastic_instant(self, name: str, **args: Any) -> None:
        if not self.telemetry.enabled:
            return
        try:
            self.home_node.telemetry.tracer.instant("cluster", name, **args)
        except Exception:  # noqa: BLE001 - tracing is best-effort
            pass

    # -- adaptive scheduler ------------------------------------------------

    def on_migration(self, callback: Any) -> None:
        """Register *callback(result)* to fire after every migration.

        *result* is the dict :meth:`NodeScheduler.migrate_out` returns
        (old/new ObjRef URIs, moved-call counts).  Runtimes use this to
        repoint live proxy objects at the grain's new home; callbacks
        must not block — they run on the migration thread.
        """
        self._migration_callbacks.append(callback)

    def migrate_grain(self, grain_uri: str, target_base_uri: str) -> dict:
        """Explicitly move the grain published at *grain_uri*.

        *grain_uri* is any of the grain's published URIs (as found in
        an ObjRef or a placement report); *target_base_uri* is the
        destination node's base URI.  Blocks until the move commits and
        returns the migration result dict.  Raises
        :class:`~repro.errors.MigrationError` — with the grain still
        serving in place — if the move cannot be carried out.
        """
        scheme, _, rest = grain_uri.partition("://")
        authority, _, path = rest.partition("/")
        if not rest or not path:
            raise ScooppError(f"not a published grain URI: {grain_uri!r}")
        victim = f"{scheme}://{authority}"
        return self._execute_migration(victim, path, target_base_uri, "manual")

    def placement_report(self) -> dict:
        """Snapshot of where grains live and what the scheduler did.

        Returns the active policy name, per-node rows (grain counts,
        stealable backlog, load, per-node migration counters), the
        cluster-level steal/migration counters, and the most recent
        placement decisions merged from every object manager's log.
        """
        node_rows = []
        for report in self._scheduler_reports():
            node_rows.append(
                {
                    "base_uri": report.get("base_uri"),
                    "index": report.get("index"),
                    "grains": report.get("ios", 0),
                    "queued": report.get("queued", 0),
                    "load": report.get("load", 0.0),
                    "migrations_out": report.get("migrations_out", 0),
                    "migrations_in": report.get("migrations_in", 0),
                    "steals": report.get("steals", 0),
                }
            )
        decisions: list[dict] = []
        for node in self.nodes:
            try:
                decisions.extend(node.om.recent_decisions())
            except Exception:  # noqa: BLE001 - reporting is best-effort
                pass
        decisions.sort(key=lambda d: d.get("ts", 0.0))
        with self._sched_lock:
            counters = dict(self._sched_counters)
        return {
            "policy": getattr(
                self.placement, "name", type(self.placement).__name__
            ),
            "work_stealing": self.sched_config.work_stealing,
            "migration": self.sched_config.migration,
            "nodes": node_rows,
            "last_decisions": decisions[-32:],
            **counters,
        }

    def _scheduler_reports(self) -> list[dict]:
        """One load report per reachable node, in-process and worker."""
        reports: list[dict] = []
        for node in self.nodes:
            try:
                reports.append(node.sched.report())
            except Exception:  # noqa: BLE001 - a node mid-teardown
                pass
        with self._elastic_lock:
            handles = list(self.worker_handles)
        for handle in handles:
            try:
                proxy = self.home_node.make_proxy(f"{handle.base_uri}/sched")
                reports.append(dict(proxy.report()))
            except Exception:  # noqa: BLE001 - a dead worker just skips
                pass
        return reports

    def _sched_loop(self) -> None:
        """Rebalance thread: reports in, migrations out.

        Mirrors the elastic loop's survival rule — a failed tick (a
        worker dying mid-report, a migration racing teardown) skips the
        cycle, never kills the loop.
        """
        interval = self.sched_config.rebalance_interval_s
        while not self._sched_stop.wait(interval):
            try:
                self._sched_tick()
            except Exception:  # noqa: BLE001 - the loop must survive
                pass

    def _sched_tick(self) -> None:
        """One rebalance cycle: gather, plan, fire migrations.

        Planned moves have distinct victims and targets, so each runs
        on its own thread.  The tick never joins them: a migration's
        pause time (waiting out the victim grain's executing batch)
        can dwarf the rebalance interval under load, and blocking the
        loop on it would starve the planner of fresh reports exactly
        when the cluster is most imbalanced.  In-flight grains are
        tracked so a path is never migrated twice concurrently, and
        ``max_migrations_per_cycle`` caps the total in flight.
        """
        reports = self._scheduler_reports()
        moves = self._planner.plan(reports, time.monotonic())
        with self._sched_lock:
            self._sched_counters["cycles"] += 1
            budget = (
                self.sched_config.max_migrations_per_cycle
                - len(self._inflight_migrations)
            )
            runnable = []
            for move in moves:
                if budget <= 0:
                    break
                if move.path in self._inflight_migrations:
                    continue
                self._inflight_migrations.add(move.path)
                runnable.append(move)
                budget -= 1
        for move in runnable:
            threading.Thread(
                target=self._execute_move,
                args=(move,),
                name="parc-migrate",
                daemon=True,
            ).start()

    def _execute_move(self, move: PlannedMove) -> None:
        try:
            self._execute_migration(
                move.victim_uri, move.path, move.target_uri, move.kind
            )
        except Exception:  # noqa: BLE001 - counted in _execute_migration
            pass
        finally:
            with self._sched_lock:
                self._inflight_migrations.discard(move.path)

    def _execute_migration(
        self, victim_uri: str, path: str, target_uri: str, kind: str
    ) -> dict:
        node = self.node_by_uri(victim_uri)
        try:
            if node is not None:
                result = node.sched.migrate_out(path, target_uri, kind)
            else:
                proxy = self.home_node.make_proxy(f"{victim_uri}/sched")
                result = dict(proxy.migrate_out(path, target_uri, kind))
        except Exception:
            with self._sched_lock:
                self._sched_counters["migration_failures"] += 1
            self.metrics.counter(
                "cluster.sched.migration_failures",
                "grain migrations that aborted",
            ).inc()
            raise
        with self._sched_lock:
            self._sched_counters["migrations"] += 1
            self._sched_counters["calls_moved"] += result.get("moved_calls", 0)
            self._sched_counters["lost_calls"] += result.get("lost_calls", 0)
            if kind == "steal":
                self._sched_counters["steals"] += 1
        self.metrics.counter(
            "cluster.sched.migrations", "grain migrations executed"
        ).inc()
        if kind == "steal":
            self.metrics.counter(
                "cluster.sched.steals", "idle-node work steals"
            ).inc()
        self._elastic_instant(
            "cluster.sched.migration",
            kind=kind,
            victim=victim_uri,
            target=target_uri,
            path=path,
            moved_calls=result.get("moved_calls", 0),
        )
        for callback in list(self._migration_callbacks):
            try:
                callback(result)
            except Exception:  # noqa: BLE001 - listeners must not break moves
                pass
        return result

    def close(self) -> None:
        """Shut the cluster down without hanging on in-flight calls.

        Order matters: worker processes first (their shutdown rides
        multiprocessing queues, not our channels), then the failure
        detectors (so a vanishing peer is not gossip-worthy news), then
        the *client* channels — force-closing pooled sockets makes any
        in-flight or late call fail fast with
        :class:`~repro.errors.ChannelClosedError` instead of blocking
        node teardown — and only then the nodes themselves.
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        # The control loops first: the elastic loop spawns and retires
        # the very workers the rest of teardown is about to shut down,
        # and a migration mid-flight would race node teardown.
        for stop_attr, thread_attr in (
            ("_sched_stop", "_sched_thread"),
            ("_elastic_stop", "_elastic_thread"),
        ):
            stop = getattr(self, stop_attr, None)
            if stop is not None:
                stop.set()
            thread = getattr(self, thread_attr, None)
            if thread is not None:
                # A tick blocked on a dying worker's stats() can hold
                # the thread; it is a daemon, so a bounded join is
                # enough.
                thread.join(timeout=10.0)
        if getattr(self, "_installed_tracer", None) is not None:
            # Only undo our own installs: a nested cluster created after
            # us may have re-pointed the globals, and its close() will
            # restore them itself.
            if get_global_tracer() is self._installed_tracer:
                set_global_tracer(None)
            if (
                self._prev_sample_rate is not None
                and get_sample_rate() == self.telemetry.sample_rate
            ):
                set_sample_rate(self._prev_sample_rate)
            self._installed_tracer = None
        for handle in getattr(self, "worker_handles", []):
            try:
                handle.shutdown()
            except Exception:  # noqa: BLE001 - teardown must finish
                pass
        for node in self.nodes:
            try:
                node.om.stop_heartbeat()
            except Exception:  # noqa: BLE001 - teardown must finish
                pass
        self.services.close_all()
        # Hidden backplane listeners: ChannelServices only adopts the
        # first channel per scheme, so every node's shm listener past
        # the first needs an explicit close to unlink its handshake
        # socket and release the ring segments.
        for backplane in getattr(self, "_backplane_channels", []):
            try:
                backplane.close()
            except Exception:  # noqa: BLE001 - teardown must finish
                pass
        for node in self.nodes:
            try:
                node.close()
            except Exception:  # noqa: BLE001 - teardown must finish
                pass
        controller = getattr(self, "chaos_controller", None)
        if controller is not None:
            controller.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
