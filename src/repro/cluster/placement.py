"""Placement policies: which node hosts a new implementation object.

§3.2: "the OM selects a processing node to create a new IO (according to
the current load distribution policy)".  The paper leaves the policy
abstract; we provide the classic three plus a locality-aware policy and
make the choice pluggable.

Redesigned API: policies now receive a :class:`repro.sched.ClusterView`
— per-node load, mailbox queue depth, liveness, learned bytes-per-call
and same-node reachability — instead of a bare ``Sequence[float]`` of
loads, and return an index into ``view.nodes`` (directory order, dead
nodes included).  Old-style policies written against the loads list are
still usable two ways:

* objects with a ``choose(loads, home_index)`` method that do not
  subclass the new :class:`PlacementPolicy` are wrapped by
  :func:`coerce_policy` in a :class:`LegacyPolicyAdapter` (with a
  ``DeprecationWarning``), which rebuilds the historical contract: the
  legacy policy sees only live nodes' loads and its pick is mapped back
  to a directory index;
* the built-in policies accept a plain loads sequence where a view is
  expected (``inf`` marks a dead node), again with a
  ``DeprecationWarning`` — and ``ClusterView`` itself duck-types as the
  loads sequence, so most old policy *bodies* keep working unmodified.
"""

from __future__ import annotations

import abc
import random
import threading
import warnings
from typing import Sequence

from repro.errors import PlacementError
from repro.sched.view import ClusterView, NodeView


def as_view(view: "ClusterView | Sequence[float]") -> ClusterView:
    """Accept a :class:`ClusterView` or a legacy loads vector.

    Lifting a bare loads sequence is deprecated: callers should build a
    view (``inf`` entries become dead nodes).
    """
    if isinstance(view, ClusterView):
        return view
    warnings.warn(
        "passing a bare loads sequence to PlacementPolicy.choose() is "
        "deprecated; pass a repro.sched.ClusterView",
        DeprecationWarning,
        stacklevel=3,
    )
    return ClusterView.from_loads(view)


class PlacementPolicy(abc.ABC):
    """Chooses a node index given a cluster snapshot.

    ``choose`` returns an index into ``view.nodes`` (directory order);
    the chosen node must be alive.  ``home_index`` is the creating
    node's directory index (policies may prefer or avoid it).
    """

    name: str

    @abc.abstractmethod
    def choose(self, view: ClusterView, home_index: int) -> int:
        """Directory index of the node that should host the new IO."""

    def _live(self, view: ClusterView) -> list[NodeView]:
        live = view.live()
        if not live:
            raise PlacementError("placement asked with no live nodes")
        return live

    def _check(self, loads: Sequence[float]) -> None:
        # Retained for old policy bodies that called the legacy helper.
        if not len(loads):
            raise PlacementError("placement asked with no nodes")


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through live nodes; ignores load.  The paper-era default."""

    name = "round_robin"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = 0

    def choose(self, view: ClusterView, home_index: int) -> int:
        live = self._live(as_view(view))
        with self._lock:
            node = live[self._next % len(live)]
            self._next += 1
            return node.index


class LeastLoadedPlacement(PlacementPolicy):
    """Pick the live node with the lowest load (ties: lowest index)."""

    name = "least_loaded"

    def choose(self, view: ClusterView, home_index: int) -> int:
        live = self._live(as_view(view))
        best = live[0]
        for node in live[1:]:
            if node.load < best.load:
                best = node
        return best.index


class RandomPlacement(PlacementPolicy):
    """Uniform random choice among live nodes; seedable."""

    name = "random"

    def __init__(self, seed: int | None = None) -> None:
        self._random = random.Random(seed)
        self._lock = threading.Lock()

    def choose(self, view: ClusterView, home_index: int) -> int:
        live = self._live(as_view(view))
        with self._lock:
            return live[self._random.randrange(len(live))].index


class LocalityAwarePlacement(PlacementPolicy):
    """Load plus transfer cost, priced with learned bytes-per-call.

    Each live node is scored ``load + transfer``, where ``transfer``
    charges the class's learned average serialized request size
    (``AdaptiveGrainController.observe_call_bytes`` feeds it) scaled by
    the transport: wire peers pay ``wire_cost_factor`` x what a
    same-node peer pays, matching the measured ~3x shm-vs-tcp asymmetry
    of the shared-memory backplane.  With no byte observations yet the
    policy degenerates to least-loaded; as evidence accumulates,
    heavy-argument classes gravitate to co-located nodes unless the
    load gap outweighs the wire penalty.

    ``bytes_scale`` converts bytes-per-call into load units: one
    ``bytes_scale``-byte call costs one load point when shipped over
    the wire at factor 1.

    When the view carries telemetry histogram summaries
    (``NodeView.avg_service_s`` > 0) the score adds a service-time term:
    ``queue_depth * avg_service_s / service_scale_s``, i.e. the node's
    backlog priced in *measured seconds of work* rather than task
    counts — ten queued 100 µs calls are cheaper than one queued 50 ms
    call.  ``service_scale_s`` converts backlog-seconds into load units
    (one point per 10 ms of queued work by default); nodes without
    summaries (telemetry off, old peers) contribute 0 and keep the
    historical score exactly.
    """

    name = "locality"

    def __init__(
        self,
        wire_cost_factor: float = 3.0,
        same_node_cost_factor: float = 1.0,
        bytes_scale: float = 64 * 1024.0,
        service_scale_s: float = 0.01,
    ) -> None:
        if wire_cost_factor <= 0 or same_node_cost_factor <= 0:
            raise PlacementError("cost factors must be positive")
        if bytes_scale <= 0:
            raise PlacementError("bytes_scale must be positive")
        if service_scale_s <= 0:
            raise PlacementError("service_scale_s must be positive")
        self.wire_cost_factor = wire_cost_factor
        self.same_node_cost_factor = same_node_cost_factor
        self.bytes_scale = bytes_scale
        self.service_scale_s = service_scale_s

    def _score(self, node: NodeView) -> float:
        factor = (
            self.same_node_cost_factor
            if node.same_node
            else self.wire_cost_factor
        )
        score = node.load + (node.bytes_per_call / self.bytes_scale) * factor
        avg_service_s = getattr(node, "avg_service_s", 0.0)
        if avg_service_s > 0.0 and node.queue_depth > 0:
            score += (
                node.queue_depth * avg_service_s / self.service_scale_s
            )
        return score

    def choose(self, view: ClusterView, home_index: int) -> int:
        live = self._live(as_view(view))
        best = live[0]
        best_score = self._score(best)
        for node in live[1:]:
            score = self._score(node)
            # Strict < keeps ties on the lowest index; among equal
            # scores a same-node peer wins (cheaper to reach even when
            # the learned size is still zero).
            if score < best_score or (
                score == best_score and node.same_node and not best.same_node
            ):
                best, best_score = node, score
        return best.index


class LegacyPolicyAdapter(PlacementPolicy):
    """Wraps an old-style ``choose(loads, home_index)`` policy.

    Reconstructs the historical contract the ObjectManager used to
    provide: the wrapped policy sees a loads list covering only live
    nodes (so it never has to reason about ``inf`` entries or liveness)
    with ``home_index`` remapped into that list, and its pick is mapped
    back to a directory index.
    """

    def __init__(self, legacy: object) -> None:
        if not callable(getattr(legacy, "choose", None)):
            raise PlacementError(
                f"{type(legacy).__qualname__} has no choose() method"
            )
        warnings.warn(
            f"placement policy {type(legacy).__qualname__} uses the "
            "legacy choose(loads, home_index) signature; migrate to "
            "choose(view: repro.sched.ClusterView, home_index)",
            DeprecationWarning,
            stacklevel=3,
        )
        self._legacy = legacy
        self.name = getattr(legacy, "name", type(legacy).__qualname__)

    def choose(self, view: ClusterView, home_index: int) -> int:
        live = self._live(as_view(view))
        loads = [node.load for node in live]
        live_home = 0
        for position, node in enumerate(live):
            if node.index == home_index:
                live_home = position
                break
        chosen = self._legacy.choose(loads, live_home)  # type: ignore[attr-defined]
        if not isinstance(chosen, int) or not 0 <= chosen < len(live):
            raise PlacementError(
                f"legacy policy {self.name!r} chose {chosen!r} "
                f"outside the {len(live)} live nodes"
            )
        return live[chosen].index


def coerce_policy(policy: object) -> PlacementPolicy:
    """Return *policy* as a new-style :class:`PlacementPolicy`.

    Instances of the redesigned ABC pass through; anything else with a
    ``choose`` method is wrapped in :class:`LegacyPolicyAdapter` (which
    emits the ``DeprecationWarning``); strings go through
    :func:`make_placement`.
    """
    if isinstance(policy, PlacementPolicy):
        return policy
    if isinstance(policy, str):
        return make_placement(policy)
    return LegacyPolicyAdapter(policy)


_POLICIES = {
    "round_robin": RoundRobinPlacement,
    "least_loaded": LeastLoadedPlacement,
    "random": RandomPlacement,
    "locality": LocalityAwarePlacement,
}


def make_placement(name: str, **kwargs: object) -> PlacementPolicy:
    """Build a policy by name (``round_robin``, ``least_loaded``,
    ``random``, ``locality``)."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise PlacementError(
            f"unknown placement policy {name!r}; known: {known}"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]
