"""Placement policies: which node hosts a new implementation object.

§3.2: "the OM selects a processing node to create a new IO (according to
the current load distribution policy)".  The paper leaves the policy
abstract; we provide the three classic ones and make the choice pluggable
(an extension ablated in the benchmarks).
"""

from __future__ import annotations

import abc
import random
import threading
from typing import Sequence

from repro.errors import PlacementError


class PlacementPolicy(abc.ABC):
    """Chooses a node index given the cluster's current loads."""

    name: str

    @abc.abstractmethod
    def choose(self, loads: Sequence[float], home_index: int) -> int:
        """Index into *loads* for the new IO.

        *home_index* is the creating node (policies may avoid or prefer
        it).  *loads* always has at least one entry.
        """

    def _check(self, loads: Sequence[float]) -> None:
        if not loads:
            raise PlacementError("placement asked with no nodes")


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through nodes; ignores load.  The paper-era default."""

    name = "round_robin"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = 0

    def choose(self, loads: Sequence[float], home_index: int) -> int:
        self._check(loads)
        with self._lock:
            index = self._next % len(loads)
            self._next += 1
            return index


class LeastLoadedPlacement(PlacementPolicy):
    """Pick the node with the lowest reported load (ties: lowest index)."""

    name = "least_loaded"

    def choose(self, loads: Sequence[float], home_index: int) -> int:
        self._check(loads)
        best_index = 0
        best_load = loads[0]
        for index, load in enumerate(loads):
            if load < best_load:
                best_index, best_load = index, load
        return best_index


class RandomPlacement(PlacementPolicy):
    """Uniform random choice; seedable for reproducible runs."""

    name = "random"

    def __init__(self, seed: int | None = None) -> None:
        self._random = random.Random(seed)
        self._lock = threading.Lock()

    def choose(self, loads: Sequence[float], home_index: int) -> int:
        self._check(loads)
        with self._lock:
            return self._random.randrange(len(loads))


_POLICIES = {
    "round_robin": RoundRobinPlacement,
    "least_loaded": LeastLoadedPlacement,
    "random": RandomPlacement,
}


def make_placement(name: str, **kwargs: object) -> PlacementPolicy:
    """Build a policy by name (``round_robin``, ``least_loaded``, ``random``)."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise PlacementError(
            f"unknown placement policy {name!r}; known: {known}"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]
