"""Node: one processing element — host, object manager, factory.

Fig. 3's per-node cast: the **OM** (object manager) owns placement and
grain decisions for objects created on this node; the **factory** (the
``RemoteFactory`` of Fig. 6) instantiates implementation objects on
request from remote POs; the remoting host carries both plus every IO the
node ends up hosting.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Sequence

from repro.channels.base import Channel
from repro.channels.services import ChannelServices
from repro.core.grain import AdaptiveGrainController, GrainDecision, GrainPolicy
from repro.core.impl import ImplementationObject
from repro.core.model import parallel_class_table
from repro.cluster.placement import PlacementPolicy, coerce_policy
from repro.errors import PlacementError, RemoteInvocationError, ScooppError
from repro.flow import estimate_p99
from repro.remoting import MarshalByRefObject, RemotingHost
from repro.remoting.proxy import RemoteProxy
from repro.sched.engine import NodeScheduler
from repro.sched.view import ClusterView, NodeView
from repro.telemetry import (
    MetricsRegistry,
    TelemetryConfig,
    summarize_method_histograms,
)
from repro.telemetry.node import NodeTelemetry
from repro.telemetry.tracer import Tracer, current_tracer_var

#: How long a sampled peer-load vector stays fresh (seconds).  Placement
#: is latency-sensitive: one remote load query per peer per creation would
#: dwarf the creation itself, so loads are cached briefly — the paper's
#: OMs similarly exchange load information periodically, not per call.
LOAD_CACHE_TTL_S = 0.05

#: Refresh peer execution statistics every this many grain decisions.
STATS_REFRESH_PERIOD = 32

#: Placement decisions kept for ``placement_report()`` introspection.
DECISION_LOG_SIZE = 32


class ObjectManager(MarshalByRefObject):
    """Per-node manager: load reporting, placement, grain decisions.

    The remotely callable surface (``load``, ``class_stats``, ``ping``) is
    what peer OMs use; ``decide_and_place`` is the local entry POs go
    through at construction (Fig. 5's "contact OM to get a (host) and tcp
    (port) for the new object").
    """

    def __init__(
        self,
        node: "Node",
        grain: GrainPolicy | AdaptiveGrainController,
        placement: PlacementPolicy,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.node = node
        self.grain = grain
        # Old-style Sequence[float] policies arrive wrapped in the
        # back-compat adapter (with its DeprecationWarning) right here,
        # so everything downstream speaks the ClusterView API.
        self.placement = coerce_policy(placement)
        self.metrics = metrics
        self._lock = threading.Lock()
        self._directory: list[str] = []  # node base URIs, cluster order
        self._peer_oms: dict[str, RemoteProxy] = {}
        self._reports_cache: list[dict | None] | None = None
        self._loads_stamp = 0.0
        self._decisions = 0
        self._recent_decisions: deque[dict] = deque(maxlen=DECISION_LOG_SIZE)
        # Placements made since the last load refresh: the cache alone
        # would send every creation in a burst to the same node.
        self._placed_since_refresh: dict[int, int] = {}
        # Nodes observed unreachable; excluded from placement until a
        # later probe sees them again.
        self._dead: set[str] = set()
        # Failure-detector state: heartbeat thread + liveness listeners.
        self._down_callbacks: list = []
        self._up_callbacks: list = []
        self._hb_thread: threading.Thread | None = None
        self._hb_stop = threading.Event()
        self._hb_interval = 0.0

    # -- remote surface ----------------------------------------------------

    def load(self) -> float:
        """This node's load: live IOs plus queued work (remote-callable)."""
        return self.node.current_load()

    def load_report(self) -> dict:
        """Structured load report: the ClusterView row peers build.

        Richer than :meth:`load` (which is kept for wire compatibility
        with older peers): mailbox queue depth joins the scalar load so
        placement can see backlog, not just population; with telemetry
        on, the node's ``parc.method.seconds.*`` histogram summaries
        ride along — ``avg_service_s``/``p99_s`` price the backlog in
        measured seconds, and the per-method ``methods`` map feeds peer
        grain autotuners.  Peers running older surfaces simply never
        read the extra keys (and this side tolerates their absence via
        ``.get``), so mixed clusters keep placing.
        """
        report = {
            "load": self.node.current_load(),
            "ios": self.node.io_count(),
            "queued": self.node.queued_count(),
            "avg_service_s": 0.0,
            "p99_s": 0.0,
        }
        summaries = self.node.method_summaries()
        if summaries:
            total = sum(s["count"] for s in summaries.values())
            if total > 0:
                report["avg_service_s"] = (
                    sum(
                        s["avg_s"] * s["count"]
                        for s in summaries.values()
                    )
                    / total
                )
                report["p99_s"] = max(
                    s["p99_s"] for s in summaries.values()
                )
            report["methods"] = {
                span: [s["avg_s"], int(s["count"])]
                for span, s in summaries.items()
            }
        return report

    def recent_decisions(self) -> list:
        """The last placement decisions this manager made (newest last)."""
        with self._lock:
            return [dict(d) for d in self._recent_decisions]

    def class_stats(self, class_name: str) -> tuple:
        """(avg exec seconds, samples) for *class_name* on this node."""
        if isinstance(self.grain, AdaptiveGrainController):
            return self.grain.stats_for(class_name)
        return (0.0, 0)

    def ping(self) -> str:
        """Liveness probe; returns the node's base URI."""
        return self.node.base_uri

    def report_dead(self, base_uri: str) -> None:
        """Gossip receiver: a peer's detector declared *base_uri* dead.

        Adopt the verdict (one hop, no re-gossip: the reporting detector
        already told every live peer).  A verdict about ourselves is
        ignored — we are demonstrably alive to be handling this call.
        """
        if base_uri != self.node.base_uri:
            self.note_dead(base_uri)

    def report_alive(self, base_uri: str) -> None:
        """Gossip receiver: a peer's detector saw *base_uri* recover."""
        if base_uri != self.node.base_uri:
            self.note_alive(base_uri)

    # -- local surface --------------------------------------------------------

    def set_directory(self, directory: Sequence[str]) -> None:
        with self._lock:
            self._directory = list(directory)
            self._peer_oms.clear()
            self._reports_cache = None

    def directory(self) -> list[str]:
        """The cluster directory (node base URIs) as last set."""
        with self._lock:
            return list(self._directory)

    def decide_and_place(self, class_name: str) -> tuple[GrainDecision, str | None]:
        """Grain decision plus target factory URI (None = agglomerate)."""
        with self._lock:
            self._decisions += 1
            refresh_stats = self._decisions % STATS_REFRESH_PERIOD == 0
        if refresh_stats:
            self._merge_peer_stats(class_name)
        decision = self.grain.decide(class_name)
        tracer = self._tracer()
        if tracer is not None:
            tracer.instant(
                "grain",
                "grain.decide",
                class_name=class_name,
                **decision.trace_args(),
            )
        if decision.agglomerate:
            return decision, None
        view = self.cluster_view(class_name)
        if not view.live():
            raise PlacementError(
                "no live nodes available for placement "
                f"(directory of {len(view.nodes)}, all unreachable)"
            )
        chosen = self.placement.choose(view, self._home_index())
        if not 0 <= chosen < len(view.nodes) or not view.nodes[chosen].alive:
            raise PlacementError(
                f"policy {self.placement.name} chose invalid index {chosen}"
            )
        target = view.nodes[chosen].base_uri
        with self._lock:
            self._placed_since_refresh[chosen] = (
                self._placed_since_refresh.get(chosen, 0) + 1
            )
            self._recent_decisions.append(
                {
                    "class_name": class_name,
                    "chosen": chosen,
                    "base_uri": target,
                    "policy": self.placement.name,
                    "home": self.node.base_uri,
                    "ts": time.time(),
                }
            )
        return decision, f"{target}/factory"

    def cluster_view(self, class_name: str | None = None) -> ClusterView:
        """Snapshot the cluster as a :class:`ClusterView`.

        One row per directory entry: cached peer load reports (dead
        peers flagged rather than dropped, so policies see directory
        indices), the adaptive controller's learned bytes-per-call for
        *class_name*, and same-node reachability (co-located peers ride
        the shm backplane at ~1/3 the wire cost).
        """
        directory = self._directory_snapshot()
        reports = self._current_reports()
        bytes_per_call = 0.0
        if class_name is not None and isinstance(
            self.grain, AdaptiveGrainController
        ):
            bytes_per_call = self.grain.call_bytes_for(class_name)[0]
        with self._lock:
            dead = set(self._dead)
            placed = dict(self._placed_since_refresh)
        nodes = []
        for index, base_uri in enumerate(directory):
            report = reports[index] if index < len(reports) else None
            alive = base_uri not in dead and report is not None
            nodes.append(
                NodeView(
                    index=index,
                    base_uri=base_uri,
                    alive=alive,
                    load=(
                        report["load"] + placed.get(index, 0)
                        if alive
                        else 0.0
                    ),
                    queue_depth=int(report["queued"]) if alive else 0,
                    ios=int(report["ios"]) if alive else 0,
                    same_node=self._same_host(base_uri),
                    bytes_per_call=bytes_per_call,
                    avg_service_s=(
                        float(report.get("avg_service_s", 0.0))
                        if alive
                        else 0.0
                    ),
                    p99_s=(
                        float(report.get("p99_s", 0.0)) if alive else 0.0
                    ),
                )
            )
        return ClusterView(nodes=tuple(nodes), class_name=class_name)

    def note_dead(self, base_uri: str) -> None:
        """Record *base_uri* as unreachable (excluded from placement).

        On the alive→dead *transition* (not steady state) this emits the
        ``cluster.node_down`` counter and invokes registered listeners on
        a detached thread — listeners respawn grains, which places new
        IOs, which may re-enter this manager.
        """
        with self._lock:
            transition = base_uri not in self._dead
            self._dead.add(base_uri)
            self._reports_cache = None
        if transition:
            self._emit_liveness_event(base_uri, alive=False)

    def note_alive(self, base_uri: str) -> None:
        with self._lock:
            transition = base_uri in self._dead
            self._dead.discard(base_uri)
            self._reports_cache = None
        if transition:
            self._emit_liveness_event(base_uri, alive=True)

    def dead_nodes(self) -> list[str]:
        with self._lock:
            return sorted(self._dead)

    def on_node_down(self, callback) -> None:  # type: ignore[no-untyped-def]
        """Register ``callback(base_uri)`` for alive→dead transitions."""
        with self._lock:
            self._down_callbacks.append(callback)

    def on_node_up(self, callback) -> None:  # type: ignore[no-untyped-def]
        """Register ``callback(base_uri)`` for dead→alive transitions."""
        with self._lock:
            self._up_callbacks.append(callback)

    def _emit_liveness_event(self, base_uri: str, alive: bool) -> None:
        if self.metrics is not None:
            name = "cluster.node_up" if alive else "cluster.node_down"
            self.metrics.counter(name, "liveness transitions observed").inc()
        with self._lock:
            callbacks = list(
                self._up_callbacks if alive else self._down_callbacks
            )
        if not callbacks:
            return

        def run() -> None:
            for callback in callbacks:
                try:
                    callback(base_uri)
                except Exception:  # noqa: BLE001 - listeners must not kill us
                    pass

        # Detached: note_dead fires on placement/probe hot paths and a
        # listener may call back into placement (grain respawn).
        thread = threading.Thread(
            target=run, name="parc-liveness-event", daemon=True
        )
        thread.start()

    def probe_peers(self) -> dict[str, bool]:
        """Ping every directory peer; updates liveness, returns the map."""
        results: dict[str, bool] = {}
        for base_uri in self._directory_snapshot():
            if base_uri == self.node.base_uri:
                results[base_uri] = True
                continue
            try:
                self._peer_om(base_uri).ping()
                results[base_uri] = True
                self.note_alive(base_uri)
            except Exception:  # noqa: BLE001 - probe failure = dead
                results[base_uri] = False
                self.note_dead(base_uri)
        return results

    # -- heartbeat failure detector ----------------------------------------

    def start_heartbeat(self, interval_s: float) -> None:
        """Probe peers every *interval_s* seconds on a daemon thread.

        Each round updates liveness (feeding the circuit breaker through
        the shared client channel) and gossips any *transition* to every
        still-live peer via their ``report_dead``/``report_alive`` remote
        surface, so a verdict reaches nodes that have not probed yet.
        """
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be > 0")
        with self._lock:
            if self._hb_thread is not None:
                return
            self._hb_interval = interval_s
            self._hb_stop.clear()
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"parc-heartbeat-{self.node.index}",
                daemon=True,
            )
        self._hb_thread.start()

    def stop_heartbeat(self) -> None:
        with self._lock:
            thread, self._hb_thread = self._hb_thread, None
        if thread is not None:
            self._hb_stop.set()
            thread.join(timeout=2.0)

    def _heartbeat_loop(self) -> None:
        last: dict[str, bool] = {}
        while not self._hb_stop.wait(self._hb_interval):
            try:
                last = self._heartbeat_round(last)
            except Exception:  # noqa: BLE001 - detector must outlive errors
                pass

    def _heartbeat_round(self, last: dict[str, bool]) -> dict[str, bool]:
        tracer = self._tracer()
        if tracer is None:
            return self._heartbeat_round_inner(last)
        # Bind this node's tracer on the detector thread so the probe
        # rpc spans land in this node's lane, under one round span.
        token = current_tracer_var.set(tracer)
        try:
            with tracer.span(
                "cluster", "heartbeat.round", node=self.node.base_uri
            ):
                return self._heartbeat_round_inner(last)
        finally:
            current_tracer_var.reset(token)

    def _heartbeat_round_inner(self, last: dict[str, bool]) -> dict[str, bool]:
        results = self.probe_peers()
        transitions = {
            base_uri: alive
            for base_uri, alive in results.items()
            # Unknown peers are presumed alive, so the first round only
            # gossips about nodes that are already down.
            if base_uri != self.node.base_uri
            and last.get(base_uri, True) != alive
        }
        if transitions:
            self._gossip(transitions, results)
        return results

    def _gossip(
        self, transitions: dict[str, bool], results: dict[str, bool]
    ) -> None:
        for peer, peer_alive in results.items():
            if not peer_alive or peer == self.node.base_uri:
                continue
            for subject, alive in transitions.items():
                if subject == peer:
                    continue
                try:
                    om = self._peer_om(peer)
                    if alive:
                        om.report_alive(subject)
                    else:
                        om.report_dead(subject)
                except Exception:  # noqa: BLE001 - gossip is best-effort
                    break

    def note_created(self) -> None:
        self.node.note_io_created()

    # -- internals ---------------------------------------------------------

    def _tracer(self) -> Tracer | None:
        """This node's tracer when cluster telemetry is on, else None."""
        telemetry = getattr(self.node, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            return telemetry.tracer
        return None

    def _directory_snapshot(self) -> list[str]:
        with self._lock:
            if not self._directory:
                raise ScooppError(
                    "object manager has no cluster directory; was the "
                    "cluster booted?"
                )
            return list(self._directory)

    def _home_index(self) -> int:
        directory = self._directory_snapshot()
        try:
            return directory.index(self.node.base_uri)
        except ValueError:
            return 0

    def _peer_om(self, base_uri: str) -> RemoteProxy:
        with self._lock:
            proxy = self._peer_oms.get(base_uri)
            if proxy is None:
                proxy = self.node.make_proxy(f"{base_uri}/om")
                self._peer_oms[base_uri] = proxy
            return proxy

    def _current_reports(self) -> list[dict | None]:
        """Per-directory-slot load reports (None = peer unreachable).

        Cached briefly like the historical loads vector; the richer
        ``load_report`` RPC degrades to the plain ``load()`` probe for
        peers running an older surface, so mixed clusters keep placing.
        """
        now = time.monotonic()
        with self._lock:
            if (
                self._reports_cache is not None
                and now - self._loads_stamp < LOAD_CACHE_TTL_S
            ):
                return self._reports_cache
        directory = self._directory_snapshot()
        reports: list[dict | None] = []
        for base_uri in directory:
            if base_uri == self.node.base_uri:
                reports.append(self.load_report())
                continue
            try:
                reports.append(dict(self._peer_om(base_uri).load_report()))
            except RemoteInvocationError:
                try:
                    load = float(self._peer_om(base_uri).load())
                    reports.append({"load": load, "ios": 0, "queued": 0})
                except Exception:  # noqa: BLE001 - dead peer must not block
                    reports.append(None)
                    self.note_dead(base_uri)
            except Exception:  # noqa: BLE001 - a dead peer must not block
                reports.append(None)
                self.note_dead(base_uri)
        with self._lock:
            self._reports_cache = reports
            self._loads_stamp = now
            self._placed_since_refresh.clear()
        return reports

    def _same_host(self, base_uri: str) -> bool:
        """Whether *base_uri* is co-located with this node.

        Loopback authorities live in this very process; socket
        authorities compare host parts (workers spawned by this cluster
        all bind the same interface, which is exactly the population the
        shm backplane can reach).
        """
        if base_uri == self.node.base_uri:
            return True
        scheme, _, rest = base_uri.partition("://")
        if scheme == "loopback":
            return True
        own = self.node.base_uri.partition("://")[2]
        return rest.rsplit(":", 1)[0] == own.rsplit(":", 1)[0]

    def _merge_peer_stats(self, class_name: str) -> None:
        if not isinstance(self.grain, AdaptiveGrainController):
            return
        for base_uri in self._directory_snapshot():
            if base_uri == self.node.base_uri:
                continue
            try:
                avg, samples = self._peer_om(base_uri).class_stats(class_name)
            except Exception:  # noqa: BLE001 - best-effort exchange
                continue
            self.grain.merge_remote_stats(class_name, avg, samples)
        self._merge_peer_method_summaries()

    def _merge_peer_method_summaries(self) -> None:
        """Fold peers' histogram summaries into the grain autotuner.

        Load reports carry each node's ``parc.method.seconds.*``
        summaries keyed by span name (``Short.method``); translated back
        to wire class names through the parallel-class table they become
        per-(class, method) evidence for :meth:`decide_method`, so a
        node tunes a method it has never executed locally.  Reports from
        old peers (no ``methods`` key) contribute nothing.
        """
        reports = self._current_reports()
        directory = self._directory_snapshot()
        short_to_wire = {
            name.rsplit(".", 1)[-1]: name
            for name in parallel_class_table.names()
        }
        for index, report in enumerate(reports):
            if report is None or index >= len(directory):
                continue
            if directory[index] == self.node.base_uri:
                continue  # local executions are observed directly
            methods = report.get("methods")
            if not methods:
                continue
            for span, summary in methods.items():
                short, _, method = str(span).rpartition(".")
                wire_name = short_to_wire.get(short)
                if wire_name is None or not method:
                    continue
                try:
                    avg_s, count = float(summary[0]), int(summary[1])
                except (TypeError, ValueError, IndexError):
                    continue
                self.grain.merge_remote_method_stats(
                    wire_name, method, avg_s, count
                )


class NodeFactory(MarshalByRefObject):
    """The per-node RemoteFactory of Fig. 6: instantiates IOs on request."""

    def __init__(self, node: "Node") -> None:
        self.node = node

    def create(self, class_name: str, args: tuple = (), kwargs: dict | None = None):
        """Instantiate *class_name* here; returns the IO (by reference).

        The implementation object travels back as an ObjRef and the
        calling PO receives a transparent proxy — or, when the caller is
        on this very node, the live object itself (intra-grain shortcut,
        Fig. 3 call b).
        """
        return self.node.create_impl(class_name, tuple(args), dict(kwargs or {}))

    def impl_count(self) -> int:
        return self.node.io_count()


class Node:
    """One processing node: remoting host + OM + factory + hosted IOs."""

    def __init__(
        self,
        index: int,
        channel: Channel,
        authority: str,
        services: ChannelServices,
        grain: GrainPolicy | AdaptiveGrainController,
        placement: PlacementPolicy,
        dispatch_pool_size: int = 16,
        metrics: MetricsRegistry | None = None,
        telemetry: TelemetryConfig | None = None,
        mailbox_depth: int = 0,
        priority: dict | None = None,
        shed_policy: str | None = None,
        sync_fastpath: bool = True,
    ) -> None:
        self.index = index
        self.services = services
        self.mailbox_depth = mailbox_depth
        self.priority = priority
        self.shed_policy = shed_policy
        self.sync_fastpath = sync_fastpath
        self.host = RemotingHost(
            name=f"parc-node-{index}",
            services=services,
            dispatch_pool_size=dispatch_pool_size,
        )
        # Mailbox fill feeds the credit grantor alongside the host's
        # dispatch backlog: senders are throttled before lanes overflow.
        self.host.credit_grantor.add_source(self._mailbox_pressure)
        binding = self.host.listen(channel, authority)
        self.base_uri = f"{channel.scheme}://{binding.authority}"
        # Per-node observability state, published like om/factory so any
        # peer (or the runtime's collector) can pull it over the wire.
        self.telemetry = NodeTelemetry(label=self.base_uri, config=telemetry)
        self.host.telemetry = self.telemetry
        self.om = ObjectManager(self, grain, placement, metrics=metrics)
        self.factory = NodeFactory(self)
        self.sched = NodeScheduler(self)
        self.host.publish(self.om, "om")
        self.host.publish(self.factory, "factory")
        self.host.publish(self.telemetry, "telemetry")
        self.host.publish(self.sched, "sched")
        self._lock = threading.Lock()
        self._impls: list[ImplementationObject] = []
        self._created_total = 0
        self._closed = False

    # -- IO hosting -----------------------------------------------------------

    def create_impl(
        self, class_name: str, args: tuple, kwargs: dict
    ) -> ImplementationObject:
        info = parallel_class_table.by_name(class_name)
        instance = info.cls(*args, **kwargs)
        impl = self.build_impl(instance, class_name)
        with self._lock:
            if self._closed:
                impl.dispose()
                raise ScooppError(f"node {self.index} is closed")
            self._impls.append(impl)
            self._created_total += 1
        return impl

    def build_impl(
        self, instance: Any, class_name: str
    ) -> ImplementationObject:
        """Wrap an existing instance with this node's flow-control knobs."""
        return ImplementationObject(
            instance,
            class_name,
            on_execution=self._on_execution,
            node=self,
            mailbox_depth=self.mailbox_depth,
            priority=self.priority,
            shed_policy=self.shed_policy,
            sync_fastpath=self.sync_fastpath,
        )

    def _on_execution(
        self, class_name: str, elapsed_s: float, method: str | None = None
    ) -> None:
        if isinstance(self.om.grain, AdaptiveGrainController):
            self.om.grain.observe_execution(
                class_name, elapsed_s, method=method
            )

    def adopt_impl(self, impl: ImplementationObject) -> None:
        """Take ownership of an externally built IO (grain promotion)."""
        with self._lock:
            if self._closed:
                raise ScooppError(f"node {self.index} is closed")
            self._impls.append(impl)
            self._created_total += 1

    def note_io_created(self) -> None:
        with self._lock:
            self._created_total += 1

    def io_count(self) -> int:
        with self._lock:
            return len(self._impls)

    def impl_snapshot(self) -> list[ImplementationObject]:
        with self._lock:
            return list(self._impls)

    def impl_by_path(self, path: str) -> ImplementationObject | None:
        """The hosted IO published at *path*, if any.

        Every factory-created grain is implicitly published when its
        reference crosses the wire, so the path doubles as the grain's
        stable migration address.
        """
        with self._lock:
            for impl in self._impls:
                if getattr(impl, "_parc_path", None) == path:
                    return impl
        return None

    def remove_impl(self, impl: ImplementationObject) -> None:
        """Unlist a migrated-away IO (it stays published as a forwarder)."""
        with self._lock:
            try:
                self._impls.remove(impl)
            except ValueError:
                pass

    def queued_count(self) -> int:
        """Queued (not yet executing) calls across hosted mailboxes."""
        with self._lock:
            impls = list(self._impls)
        return sum(sum(impl.stealable_backlog()) for impl in impls)

    def current_load(self) -> float:
        """Live IOs plus their queued tasks (the OM's load metric)."""
        with self._lock:
            impls = list(self._impls)
        return float(len(impls) + sum(impl.queue_length for impl in impls))

    def make_proxy(self, uri: str) -> RemoteProxy:
        return self.host.get_object(uri)

    def _mailbox_pressure(self) -> float:
        """Worst mailbox fill fraction across hosted IOs, in ``[0, 1]``.

        With bounded mailboxes this is the literal fill ratio of the
        fullest lane set; unbounded mailboxes report a soft signal (1000
        queued calls reads as saturated) so credits still throttle
        senders even when admission control is off.
        """
        with self._lock:
            impls = list(self._impls)
        worst = 0.0
        for impl in impls:
            queued = impl.queue_length
            if self.mailbox_depth > 0:
                value = queued / float(3 * self.mailbox_depth)
            else:
                value = queued / 1000.0
            if value > worst:
                worst = value
        return min(1.0, worst)

    def stats(self) -> dict:
        with self._lock:
            impls = list(self._impls)
        impl_stats = [impl.stats() for impl in impls]
        return {
            "index": self.index,
            "base_uri": self.base_uri,
            "ios": len(impls),
            "created_total": self._created_total,
            "queued": sum(s["queued"] for s in impl_stats),
            "processed": sum(s["processed"] for s in impl_stats),
            "shed": sum(s["shed"] for s in impl_stats),
            "p99_s": self.method_p99(),
        }

    def method_summaries(self) -> dict:
        """Per-method service-time summaries from this node's histograms.

        ``{"<Short>.<method>": {"count", "avg_s", "p99_s"}}`` via
        :func:`repro.telemetry.summarize_method_histograms`; empty with
        telemetry off (the histograms are never recorded then).
        """
        return summarize_method_histograms(self.telemetry.metrics.export())

    def method_p99(self) -> float | None:
        """Worst per-method p99 on this node, or None with no samples.

        Read from the ``parc.method.seconds.*`` histograms the IO worker
        records (telemetry must be enabled for those to exist) — the
        latency signal of the elastic scaling loop.
        """
        worst: float | None = None
        for name, metric in self.telemetry.metrics.export().items():
            if not name.startswith("parc.method.seconds"):
                continue
            estimate = estimate_p99(metric["buckets"], metric["count"])
            if estimate is not None and (worst is None or estimate > worst):
                worst = estimate
        return worst

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            impls, self._impls = self._impls, []
        self.om.stop_heartbeat()
        for impl in impls:
            try:
                impl.dispose()
            except Exception:  # noqa: BLE001 - teardown must finish
                pass
        self.host.close()
