"""The RMI name service: registry, LocateRegistry, Naming (Fig. 1 steps 2-3).

"Each server object must be ... registered in a name server to provide
remote references to it; client classes must contact a name server to
obtain a local reference to a remote object."  The registry here is itself
a remote object served by an :class:`~repro.rmi.runtime.RmiRuntime` — the
bootstrap trick real RMI uses — so ``Naming`` works across processes and
nodes with no extra machinery.
"""

from __future__ import annotations

import threading

from repro.errors import AlreadyBoundError, NotBoundError, RemoteException
from repro.rmi.interfaces import Remote, remote_method
from repro.rmi.rmic import rmic
from repro.rmi.runtime import RmiObjRef, RmiRuntime

#: Well-known object id of the registry inside its runtime (Java uses a
#: fixed object number for the same purpose).
REGISTRY_OBJECT_ID = "rmi-registry"


class IRegistry(Remote):
    """Remote interface of the name service."""

    @remote_method
    def bind(self, name: str, objref: RmiObjRef) -> None:
        """Bind *name*; raises AlreadyBoundError if taken."""
        raise NotImplementedError

    @remote_method
    def rebind(self, name: str, objref: RmiObjRef) -> None:
        """Bind *name*, replacing any existing binding."""
        raise NotImplementedError

    @remote_method
    def unbind(self, name: str) -> None:
        """Remove *name*; raises NotBoundError if absent."""
        raise NotImplementedError

    @remote_method
    def lookup(self, name: str) -> RmiObjRef:
        """Resolve *name*; raises NotBoundError if absent."""
        raise NotImplementedError

    @remote_method
    def list_names(self) -> list:
        """All bound names, sorted."""
        raise NotImplementedError


class RmiRegistry(IRegistry):
    """In-memory name table (the ``rmiregistry`` process)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._bindings: dict[str, RmiObjRef] = {}

    def bind(self, name: str, objref: RmiObjRef) -> None:
        with self._lock:
            if name in self._bindings:
                raise AlreadyBoundError(f"name {name!r} is already bound")
            self._bindings[name] = objref

    def rebind(self, name: str, objref: RmiObjRef) -> None:
        with self._lock:
            self._bindings[name] = objref

    def unbind(self, name: str) -> None:
        with self._lock:
            if name not in self._bindings:
                raise NotBoundError(f"name {name!r} is not bound")
            del self._bindings[name]

    def lookup(self, name: str) -> RmiObjRef:
        with self._lock:
            objref = self._bindings.get(name)
        if objref is None:
            raise NotBoundError(f"name {name!r} is not bound")
        return objref

    def list_names(self) -> list:
        with self._lock:
            return sorted(self._bindings)


class LocateRegistry:
    """Start or reach a registry (java.rmi.registry.LocateRegistry)."""

    @staticmethod
    def create_registry(
        authority: str = "127.0.0.1:0",
    ) -> tuple[RmiRuntime, "IRegistry"]:
        """Start a registry service; returns its runtime and local object.

        The runtime's :attr:`~repro.rmi.runtime.RmiRuntime.endpoint` is the
        ``host:port`` clients put in their ``rmi://`` URIs.  Close the
        runtime to stop the registry.
        """
        runtime = RmiRuntime(authority)
        registry = RmiRegistry()
        runtime.export(
            registry, interface=IRegistry, object_id=REGISTRY_OBJECT_ID
        )
        return runtime, registry

    @staticmethod
    def get_registry(endpoint: str) -> IRegistry:
        """Stub for the registry at ``host:port``."""
        stub_class = rmic(IRegistry)
        ref = RmiObjRef(
            endpoint=endpoint,
            object_id=REGISTRY_OBJECT_ID,
            interface_name=f"{IRegistry.__module__}.{IRegistry.__qualname__}",
        )
        return stub_class(ref)


def _split_rmi_uri(uri: str) -> tuple[str, str]:
    """``rmi://host:port/Name`` -> (``host:port``, ``Name``)."""
    prefix = "rmi://"
    if not uri.startswith(prefix):
        raise RemoteException(f"RMI URI {uri!r} must start with {prefix!r}")
    rest = uri[len(prefix):]
    endpoint, sep, name = rest.partition("/")
    if not sep or not endpoint or not name:
        raise RemoteException(
            f"RMI URI {uri!r} must look like rmi://host:port/Name"
        )
    return endpoint, name


class Naming:
    """URL-style facade over the registry (java.rmi.Naming), as in Fig. 1::

        Naming.rebind("rmi://host:1050/DivideServer", dsi)
        ds = Naming.lookup("rmi://host:1050/DivideServer", IDServer)
    """

    @staticmethod
    def bind(uri: str, obj) -> None:  # type: ignore[no-untyped-def]
        endpoint, name = _split_rmi_uri(uri)
        LocateRegistry.get_registry(endpoint).bind(name, _objref_of(obj))

    @staticmethod
    def rebind(uri: str, obj) -> None:  # type: ignore[no-untyped-def]
        endpoint, name = _split_rmi_uri(uri)
        LocateRegistry.get_registry(endpoint).rebind(name, _objref_of(obj))

    @staticmethod
    def unbind(uri: str) -> None:
        endpoint, name = _split_rmi_uri(uri)
        LocateRegistry.get_registry(endpoint).unbind(name)

    @staticmethod
    def lookup(uri: str, interface: type):  # type: ignore[no-untyped-def]
        """Resolve *uri* to a stub for *interface*.

        The *interface* argument plays the role of the Java cast
        ``(IDServer) Naming.lookup(...)`` — the client must know the
        remote interface and have run (or now runs) rmic for it.
        """
        endpoint, name = _split_rmi_uri(uri)
        objref = LocateRegistry.get_registry(endpoint).lookup(name)
        return rmic(interface)(objref)

    @staticmethod
    def list_names(uri: str) -> list:
        endpoint, _sep, _rest = uri[len("rmi://"):].partition("/")
        return LocateRegistry.get_registry(endpoint).list_names()


def _objref_of(obj) -> RmiObjRef:  # type: ignore[no-untyped-def]
    objref = getattr(obj, "_rmi_objref", None)
    if objref is None:
        raise RemoteException(
            f"{type(obj).__qualname__} is not exported; derive from "
            f"UnicastRemoteObject or call runtime.export(obj) first "
            f"(Fig. 1 step 2)"
        )
    return objref
