"""RMI runtime: export table, JRMP-analog wire protocol, remote stubs.

The moving parts behind Fig. 1's server: a per-process
:class:`RmiRuntime` listens on a TCP endpoint and dispatches calls to
exported objects; :class:`UnicastRemoteObject` exports itself at
construction (as in Java); :class:`RemoteStub` is the base class of the
``rmic``-generated client stubs.

Wire realism: every call message carries *class annotations* (the type
names of its arguments), mirroring JRMP's per-class codebase annotations —
the structural overhead that keeps RMI's wire efficiency below MPI's in
Fig. 8a even though both ride TCP.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.channels.tcp import TcpChannel
from repro.errors import (
    AlreadyBoundError,
    ExportError,
    NotBoundError,
    RemoteException,
)

#: Checked exception types preserved across the wire: the server reports
#: the type name, the stub rethrows the matching class (Java serializes
#: the exception object itself; the analog maps by name, never executing
#: remote-supplied code).
_CHECKED_EXCEPTIONS: dict[str, type] = {
    "NotBoundError": NotBoundError,
    "AlreadyBoundError": AlreadyBoundError,
    "ExportError": ExportError,
    "RemoteException": RemoteException,
}
from repro.rmi.interfaces import (
    Remote,
    remote_method_names,
    verify_remote_interface,
)
from repro.serialization import BinaryFormatter, serializable
from repro.serialization.registry import Surrogate, default_registry


@serializable(name="parc.rmi.ObjRef")
@dataclass(frozen=True)
class RmiObjRef:
    """Location of an exported remote object (endpoint + id + interface)."""

    endpoint: str
    object_id: str
    interface_name: str


@serializable(name="parc.rmi.Call")
@dataclass
class RmiCall:
    """One JRMP-analog call: operation string + argument graph + annotations."""

    object_id: str
    operation: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    annotations: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if isinstance(self.args, list):
            self.args = tuple(self.args)


@serializable(name="parc.rmi.Return")
@dataclass
class RmiReturn:
    """Result envelope: value or error description (never both)."""

    value: Any = None
    error_type: str = ""
    error_message: str = ""

    @property
    def is_error(self) -> bool:
        return bool(self.error_type)


# -- interface table ---------------------------------------------------------

_interface_lock = threading.Lock()
_interfaces: dict[str, type] = {}


def _interface_key(interface: type) -> str:
    return f"{interface.__module__}.{interface.__qualname__}"


def register_interface(interface: type) -> str:
    """Record *interface* so decoded stub references can find it."""
    key = _interface_key(interface)
    with _interface_lock:
        _interfaces[key] = interface
    return key


def interface_by_name(name: str) -> type | None:
    with _interface_lock:
        return _interfaces.get(name)


# -- client side --------------------------------------------------------------

_client_lock = threading.Lock()
_client_channel: TcpChannel | None = None


def _shared_client_channel() -> TcpChannel:
    """One connection-pooled channel for all stubs in this process."""
    global _client_channel
    with _client_lock:
        if _client_channel is None:
            _client_channel = TcpChannel(BinaryFormatter())
        return _client_channel


class RemoteStub:
    """Base class of rmic-generated stubs.

    Subclasses add one forwarding method per declared remote method; all
    runtime state lives here.  Every failure — transport or application —
    surfaces as the checked :class:`RemoteException` (Fig. 1 step 4).
    """

    #: Set by the stub generator to the interface class.
    _rmi_interface: type | None = None

    def __init__(self, objref: RmiObjRef) -> None:
        self._rmi_objref = objref
        self._rmi_channel = _shared_client_channel()

    def _invoke(self, operation: str, args: tuple, kwargs: dict | None = None) -> Any:
        call = RmiCall(
            object_id=self._rmi_objref.object_id,
            operation=operation,
            args=args,
            kwargs=kwargs or {},
            annotations=[type(arg).__qualname__ for arg in args],
        )
        formatter = self._rmi_channel.formatter
        try:
            body = formatter.dumps(call)
            response = self._rmi_channel.call(
                self._rmi_objref.endpoint, self._rmi_objref.object_id, body
            )
            result = formatter.loads(response)
        except RemoteException:
            raise
        except Exception as exc:  # noqa: BLE001 - checked-exception boundary
            raise RemoteException(
                f"remote call {operation} to {self._rmi_objref.endpoint} "
                f"failed: {exc}",
                cause=exc,
            ) from exc
        if not isinstance(result, RmiReturn):
            raise RemoteException(
                f"protocol error: expected RmiReturn, got "
                f"{type(result).__qualname__}"
            )
        if result.is_error:
            exception_class = _CHECKED_EXCEPTIONS.get(
                result.error_type, RemoteException
            )
            if exception_class is RemoteException:
                raise RemoteException(
                    f"{result.error_type}: {result.error_message}"
                )
            raise exception_class(result.error_message)
        return result.value

    def __repr__(self) -> str:
        return (
            f"<RemoteStub {self._rmi_objref.interface_name} at "
            f"{self._rmi_objref.endpoint}/{self._rmi_objref.object_id}>"
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RemoteStub):
            return self._rmi_objref == other._rmi_objref
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._rmi_objref)


# -- server side --------------------------------------------------------------

class RmiRuntime:
    """Export table + dispatcher for one process's remote objects."""

    def __init__(self, authority: str = "127.0.0.1:0") -> None:
        self._lock = threading.Lock()
        self._exports: dict[str, tuple[Any, type, frozenset[str]]] = {}
        self._counter = itertools.count(1)
        self._channel = TcpChannel(BinaryFormatter())
        self._binding = self._channel.listen(authority, self._handle)
        self._closed = False

    @property
    def endpoint(self) -> str:
        return self._binding.authority

    def export(
        self,
        obj: Any,
        interface: type | None = None,
        object_id: str | None = None,
    ) -> RmiObjRef:
        """Make *obj* remotely reachable; returns its reference.

        *interface* defaults to the single Remote interface the object's
        class implements; ambiguity is an :class:`ExportError` (Java
        resolves it via the stub class name; we require explicitness).
        """
        if interface is None:
            interface = _find_remote_interface(type(obj))
        declared = frozenset(verify_remote_interface(interface))
        register_interface(interface)
        with self._lock:
            if self._closed:
                raise ExportError("runtime is closed")
            if object_id is None:
                object_id = f"obj-{next(self._counter)}"
            if object_id in self._exports:
                raise ExportError(f"object id {object_id!r} already exported")
            self._exports[object_id] = (obj, interface, declared)
        ref = RmiObjRef(
            endpoint=self.endpoint,
            object_id=object_id,
            interface_name=_interface_key(interface),
        )
        obj._rmi_objref = ref
        obj._rmi_runtime = self
        return ref

    def unexport(self, obj: Any) -> None:
        ref = getattr(obj, "_rmi_objref", None)
        if ref is None:
            return
        with self._lock:
            self._exports.pop(ref.object_id, None)
        obj._rmi_objref = None
        obj._rmi_runtime = None

    def exported_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._exports)

    def _handle(self, path: str, body: bytes, headers: Any) -> bytes:
        formatter = self._channel.formatter
        try:
            call = formatter.loads(body)
            if not isinstance(call, RmiCall):
                raise RemoteException(
                    f"protocol error: expected RmiCall, got "
                    f"{type(call).__qualname__}"
                )
            result = self._dispatch(call)
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            result = RmiReturn(
                error_type=type(exc).__qualname__, error_message=str(exc)
            )
        return formatter.dumps(result)

    def _dispatch(self, call: RmiCall) -> RmiReturn:
        with self._lock:
            entry = self._exports.get(call.object_id)
        if entry is None:
            return RmiReturn(
                error_type="NoSuchObjectException",
                error_message=f"no exported object {call.object_id!r}",
            )
        obj, _interface, declared = entry
        method_name = call.operation.split("(", 1)[0]
        if method_name not in declared:
            return RmiReturn(
                error_type="UnmarshalException",
                error_message=(
                    f"operation {call.operation!r} is not declared on "
                    f"{entry[1].__qualname__}"
                ),
            )
        try:
            value = getattr(obj, method_name)(*call.args, **call.kwargs)
        except Exception as exc:  # noqa: BLE001 - user method boundary
            return RmiReturn(
                error_type=type(exc).__qualname__, error_message=str(exc)
            )
        return RmiReturn(value=value)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._binding.close()
        self._channel.close()

    def __enter__(self) -> "RmiRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _find_remote_interface(cls: type) -> type:
    candidates = [
        base
        for base in cls.__mro__
        if base not in (cls, Remote, object)
        and issubclass(base, Remote)
        and not issubclass(base, UnicastRemoteObject)
        and remote_method_names(base)
    ]
    # Drop bases that are refinements of other candidates (keep leaves).
    leaves = [
        base
        for base in candidates
        if not any(
            other is not base and issubclass(other, base)
            for other in candidates
        )
    ]
    if not leaves:
        raise ExportError(
            f"{cls.__qualname__} implements no Remote interface "
            f"(Fig. 1 step 1: the server class must implement an "
            f"interface extending Remote)"
        )
    if len(leaves) > 1:
        names = ", ".join(base.__qualname__ for base in leaves)
        raise ExportError(
            f"{cls.__qualname__} implements multiple Remote interfaces "
            f"({names}); pass interface= explicitly"
        )
    return leaves[0]


_default_runtime_lock = threading.Lock()
_default_runtime: RmiRuntime | None = None


def default_runtime() -> RmiRuntime:
    """Lazily started per-process runtime (ephemeral port), as in Java."""
    global _default_runtime
    with _default_runtime_lock:
        if _default_runtime is None or _default_runtime._closed:
            _default_runtime = RmiRuntime()
        return _default_runtime


def reset_default_runtime() -> None:
    """Close and forget the default runtime (test isolation)."""
    global _default_runtime
    with _default_runtime_lock:
        runtime, _default_runtime = _default_runtime, None
    if runtime is not None:
        runtime.close()


class UnicastRemoteObject(Remote):
    """Server base class: exports itself at construction (Fig. 1 step 2).

    Subclasses call ``super().__init__()`` and are immediately reachable;
    pass ``runtime=`` to export into a specific runtime, or rely on the
    process default (an ephemeral TCP port, like Java's anonymous export).
    """

    def __init__(
        self,
        runtime: RmiRuntime | None = None,
        interface: type | None = None,
    ) -> None:
        target = runtime if runtime is not None else default_runtime()
        target.export(self, interface=interface)


class _ExportedObjectSurrogate(Surrogate):
    """Exported remote objects (and stubs) cross the wire as references.

    The Java behaviour: passing an exported remote object in a call makes
    the receiver get its stub, not a copy.  Decoding builds a stub through
    the rmic cache; an unknown interface is a (checked) RemoteException.
    """

    wire_name = "parc.rmi.StubRef"

    def applies_to(self, obj: Any) -> bool:
        if isinstance(obj, RemoteStub):
            return True
        return (
            isinstance(obj, UnicastRemoteObject)
            and getattr(obj, "_rmi_objref", None) is not None
        )

    def encode(self, obj: Any) -> dict[str, Any]:
        ref: RmiObjRef = obj._rmi_objref
        return {
            "endpoint": ref.endpoint,
            "object_id": ref.object_id,
            "interface_name": ref.interface_name,
        }

    def decode(self, state: dict[str, Any]) -> Any:
        from repro.rmi.rmic import rmic  # local import: rmic imports us

        ref = RmiObjRef(
            endpoint=state["endpoint"],
            object_id=state["object_id"],
            interface_name=state["interface_name"],
        )
        interface = interface_by_name(ref.interface_name)
        if interface is None:
            raise RemoteException(
                f"cannot build stub: interface {ref.interface_name!r} is "
                f"not registered in this process (import it and run rmic)"
            )
        return rmic(interface)(ref)


default_registry.register_surrogate(_ExportedObjectSurrogate())
