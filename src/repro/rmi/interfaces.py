"""Remote interfaces and the checked-exception discipline.

Java forces two declarations the paper's Fig. 1 highlights (steps ① and ④):
the interface extends ``Remote``, and every remote method ``throws
RemoteException``.  Python has neither checked exceptions nor ``throws``
clauses, so the analog makes the declaration explicit and *verified*:
methods must be decorated with :func:`remote_method`, and
:func:`verify_remote_interface` (called by ``rmic``) rejects interfaces
that skip it — the same "forgot a step, tool says no" experience.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, TypeVar

from repro.errors import RemoteException

F = TypeVar("F", bound=Callable[..., Any])

_REMOTE_FLAG = "_rmi_remote_method"


class Remote:
    """Marker base for remote interfaces (java.rmi.Remote).

    An interface is a plain class whose public methods are all decorated
    with :func:`remote_method`; bodies are conventionally ``raise
    NotImplementedError`` or docstring-only.
    """


def remote_method(func: F) -> F:
    """Declare a method as remote (the ``throws RemoteException`` analog).

    The declaration is what :func:`~repro.rmi.rmic.rmic` verifies; calling
    an undeclared method through a stub is impossible because the stub
    only generates declared methods.
    """
    setattr(func, _REMOTE_FLAG, True)
    return func


def is_remote_method(member: Any) -> bool:
    return callable(member) and getattr(member, _REMOTE_FLAG, False)


def remote_method_names(interface: type) -> list[str]:
    """Declared remote methods of *interface*, sorted for determinism."""
    names = [
        name
        for name in dir(interface)
        if not name.startswith("_")
        and is_remote_method(getattr(interface, name))
    ]
    return sorted(names)


def method_signature(interface: type, name: str) -> inspect.Signature:
    """Python signature of a declared remote method (minus ``self``)."""
    func = getattr(interface, name)
    signature = inspect.signature(func)
    parameters = list(signature.parameters.values())
    if parameters and parameters[0].name == "self":
        parameters = parameters[1:]
    return signature.replace(parameters=parameters)


def verify_remote_interface(interface: type) -> list[str]:
    """Validate *interface* per Fig. 1's rules; returns its remote methods.

    Raises :class:`RemoteException` (the checked family) listing every
    violation at once, mirroring how javac/rmic reports all missing
    ``throws`` clauses together.
    """
    problems: list[str] = []
    if not (isinstance(interface, type) and issubclass(interface, Remote)):
        problems.append(
            f"{interface!r} does not extend Remote (Fig. 1 step 1)"
        )
        raise RemoteException("; ".join(problems))
    declared = remote_method_names(interface)
    undeclared = [
        name
        for name in dir(interface)
        if not name.startswith("_")
        and callable(getattr(interface, name))
        and not is_remote_method(getattr(interface, name))
    ]
    for name in undeclared:
        problems.append(
            f"method {name!r} is not declared with @remote_method "
            f"(the 'throws RemoteException' analog, Fig. 1 step 1)"
        )
    if not declared and not undeclared:
        problems.append("interface declares no remote methods")
    if problems:
        raise RemoteException("; ".join(problems))
    return declared
