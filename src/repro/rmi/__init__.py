"""Java RMI analog: the paper's primary comparison baseline.

Reproduces the RMI programming model with the full ceremony the paper's
Fig. 1 walks through — deliberately, because the contrast in effort between
Fig. 1 (Java) and Fig. 2 (C#) is one of the paper's points:

1. server classes implement an interface extending :class:`Remote`, whose
   methods must be declared with :func:`remote_method` (the analog of
   ``throws RemoteException``);
2. server objects are explicitly instantiated and exported
   (:class:`UnicastRemoteObject`), then registered by name
   (:func:`Naming.rebind`);
3. clients look stubs up by name (:func:`Naming.lookup`), supplying the
   interface (the Java cast);
4. every remote call can raise the **checked** :class:`RemoteException`;
5. stubs are *generated* per interface by :func:`rmic` — a real
   source-to-source generator, like the ``rmic`` utility.

The wire protocol (JRMP analog) rides the same channel layer as the .Net
remoting analog but with its own message envelope, including per-call class
annotations — the extra baggage that puts RMI's wire efficiency between
MPI's and the SOAP channel's in Fig. 8a.
"""

from repro.errors import (
    AlreadyBoundError,
    ExportError,
    NotBoundError,
    RemoteException,
)
from repro.rmi.interfaces import Remote, remote_method, verify_remote_interface
from repro.rmi.rmic import RmicError, generate_stub_source, rmic
from repro.rmi.runtime import RemoteStub, RmiObjRef, RmiRuntime, UnicastRemoteObject
from repro.rmi.registry import LocateRegistry, Naming, RmiRegistry

__all__ = [
    "AlreadyBoundError",
    "ExportError",
    "LocateRegistry",
    "Naming",
    "NotBoundError",
    "Remote",
    "RemoteException",
    "RemoteStub",
    "RmiObjRef",
    "RmiRegistry",
    "RmiRuntime",
    "RmicError",
    "UnicastRemoteObject",
    "generate_stub_source",
    "remote_method",
    "rmic",
    "verify_remote_interface",
]
